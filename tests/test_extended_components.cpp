// Tests for the extended component library (paper §VI: "expanding the
// generic components library"): Reduce, Transpose, Downsample, Threshold,
// Moments, and Validate — kernels plus end-to-end behaviour through the
// transport.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <numeric>
#include <thread>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "core/launch_script.hpp"
#include "core/moments.hpp"
#include "core/reduce.hpp"
#include "core/registry.hpp"
#include "core/threshold.hpp"
#include "core/transpose.hpp"
#include "core/workflow.hpp"
#include "mpi/runtime.hpp"
#include "sim/source_component.hpp"

namespace core = sb::core;
namespace sim = sb::sim;
namespace fp = sb::flexpath;
namespace a = sb::adios;
namespace u = sb::util;

namespace {

std::string tmp(const std::string& name) { return ::testing::TempDir() + "/" + name; }

void run_component(fp::Fabric& fabric, const std::string& name, int nprocs,
                   std::vector<std::string> args) {
    sb::mpi::run_ranks(nprocs, [&](sb::mpi::Communicator& comm) {
        auto c = core::make_component(name);
        core::RunContext ctx{fabric, comm, nullptr, {}};
        c->run(ctx, u::ArgList(args));
    });
}

/// Publishes steps of a labelled array from one writer rank.
std::jthread publish(fp::Fabric& fabric, const std::string& stream,
                     const std::string& array, u::NdShape shape,
                     std::vector<std::string> labels,
                     std::vector<std::vector<double>> steps,
                     std::map<std::string, std::vector<std::string>> attrs = {}) {
    labels.resize(shape.ndim());
    return std::jthread([&fabric, stream, array, shape = std::move(shape),
                         labels = std::move(labels), steps = std::move(steps),
                         attrs = std::move(attrs)] {
        a::GroupDef def = core::output_group("test-source", array, labels);
        a::Writer w(fabric, stream, def, 0, 1);
        const auto& dim_names = def.find(array)->dimensions;
        for (const auto& data : steps) {
            w.begin_step();
            for (std::size_t d = 0; d < shape.ndim(); ++d) {
                w.set_dimension(dim_names[d], shape[d]);
            }
            for (const auto& [k, v] : attrs) w.write_attribute(k, v);
            w.write<double>(array, data, u::Box::whole(shape));
            w.end_step();
        }
        w.close();
    });
}

struct Collected {
    std::vector<std::vector<double>> steps;
    u::NdShape shape;
    std::vector<std::string> labels;
    std::map<std::string, std::vector<std::string>> attrs;
    std::map<std::string, double> dattrs;
};

Collected collect(fp::Fabric& fabric, const std::string& stream,
                  const std::string& array) {
    Collected out;
    a::Reader r(fabric, stream, 0, 1);
    while (r.begin_step()) {
        const a::VarInfo info = r.inq_var(array);
        out.shape = info.shape;
        out.labels = info.dim_labels;
        out.attrs = r.string_attributes();
        out.dattrs = r.double_attributes();
        out.steps.push_back(r.read<double>(array, u::Box::whole(info.shape)));
        r.end_step();
    }
    return out;
}

}  // namespace

// ---- reduce kernel ----------------------------------------------------------

TEST(ReduceKernel, OpsOverMiddleDimension) {
    // (2, 3, 2): reduce dim 1.
    const u::NdShape shape{2, 3, 2};
    const std::vector<double> in = {1, 2, 3, 4, 5, 6,     // block o=0
                                    -1, 0, 7, 2, 1, -2};  // block o=1
    std::vector<double> out(4);
    core::reduce_copy(in, shape, 1, core::ReduceKind::Sum, out);
    EXPECT_EQ(out, (std::vector<double>{9, 12, 7, 0}));
    core::reduce_copy(in, shape, 1, core::ReduceKind::Mean, out);
    EXPECT_EQ(out, (std::vector<double>{3, 4, 7.0 / 3, 0}));
    core::reduce_copy(in, shape, 1, core::ReduceKind::Min, out);
    EXPECT_EQ(out, (std::vector<double>{1, 2, -1, -2}));
    core::reduce_copy(in, shape, 1, core::ReduceKind::Max, out);
    EXPECT_EQ(out, (std::vector<double>{5, 6, 7, 2}));
}

TEST(ReduceKernel, FirstAndLastDimensions) {
    const u::NdShape shape{2, 3};
    const std::vector<double> in = {1, 2, 3, 10, 20, 30};
    std::vector<double> rows(3), cols(2);
    core::reduce_copy(in, shape, 0, core::ReduceKind::Sum, rows);
    EXPECT_EQ(rows, (std::vector<double>{11, 22, 33}));
    core::reduce_copy(in, shape, 1, core::ReduceKind::Sum, cols);
    EXPECT_EQ(cols, (std::vector<double>{6, 60}));
}

TEST(ReduceKernel, Errors) {
    EXPECT_THROW(core::reduce_copy({}, u::NdShape{2}, 1, core::ReduceKind::Sum, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)core::parse_reduce_kind("median"), u::ArgError);
    EXPECT_EQ(core::parse_reduce_kind("mean"), core::ReduceKind::Mean);
}

class ReduceComponent : public ::testing::TestWithParam<int> {};

TEST_P(ReduceComponent, MeanOverToroidalDim) {
    fp::Fabric fabric;
    const u::NdShape shape{3, 4, 2};
    std::vector<double> data(shape.volume());
    std::iota(data.begin(), data.end(), 0.0);
    auto src = publish(fabric, "in.fp", "f", shape, {"s", "g", "q"}, {data},
                       {{"f.header.2", {"a", "b"}}});
    std::jthread red([&] {
        run_component(fabric, "reduce", GetParam(),
                      {"in.fp", "f", "0", "mean", "out.fp", "m"});
    });
    const Collected out = collect(fabric, "out.fp", "m");
    EXPECT_EQ(out.shape, (u::NdShape{4, 2}));
    EXPECT_EQ(out.labels, (std::vector<std::string>{"g", "q"}));
    // Quantity header follows its dimension (2 -> 1).
    EXPECT_EQ(out.attrs.at("m.header.1"), (std::vector<std::string>{"a", "b"}));
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(out.steps.at(0)[i], (data[i] + data[i + 8] + data[i + 16]) / 3);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ReduceComponent, ::testing::Values(1, 2, 5));

// ---- transpose ---------------------------------------------------------------

TEST(TransposeKernel, ParsePermutation) {
    EXPECT_EQ(core::parse_permutation("2,0,1"), (std::vector<std::size_t>{2, 0, 1}));
    EXPECT_EQ(core::parse_permutation("0"), (std::vector<std::size_t>{0}));
    EXPECT_THROW((void)core::parse_permutation("0,0"), u::ArgError);
    EXPECT_THROW((void)core::parse_permutation("0,2"), u::ArgError);
    EXPECT_THROW((void)core::parse_permutation("a,b"), u::ArgError);
    EXPECT_THROW((void)core::parse_permutation(""), u::ArgError);
}

TEST(TransposeKernel, TwoDimensional) {
    const u::NdShape shape{2, 3};
    const std::vector<double> in = {1, 2, 3, 4, 5, 6};
    std::vector<double> out(6);
    const std::size_t perm[] = {1, 0};
    core::transpose_copy(std::as_bytes(std::span(in)), shape, perm,
                         std::as_writable_bytes(std::span(out)), sizeof(double));
    EXPECT_EQ(out, (std::vector<double>{1, 4, 2, 5, 3, 6}));
}

class TransposeKernelSweep
    : public ::testing::TestWithParam<
          std::tuple<std::vector<std::uint64_t>, std::vector<std::size_t>>> {};

TEST_P(TransposeKernelSweep, MatchesIndexArithmetic) {
    const auto& [dims, perm] = GetParam();
    const u::NdShape shape(dims);
    std::vector<double> in(shape.volume());
    std::iota(in.begin(), in.end(), 0.0);
    std::vector<double> out(in.size());
    core::transpose_copy(std::as_bytes(std::span(in)), shape, perm,
                         std::as_writable_bytes(std::span(out)), sizeof(double));

    const u::NdShape out_shape = core::transpose_shape(shape, perm);
    std::vector<std::uint64_t> idx(shape.ndim(), 0);
    for (std::uint64_t lin = 0; lin < shape.volume(); ++lin) {
        std::vector<std::uint64_t> oidx(perm.size());
        for (std::size_t j = 0; j < perm.size(); ++j) oidx[j] = idx[perm[j]];
        EXPECT_EQ(out[out_shape.linear_index(oidx)], in[lin]);
        for (std::size_t d = shape.ndim(); d-- > 0;) {
            if (++idx[d] < shape[d]) break;
            idx[d] = 0;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransposeKernelSweep,
    ::testing::Values(
        std::make_tuple(std::vector<std::uint64_t>{4, 5},
                        std::vector<std::size_t>{1, 0}),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4},
                        std::vector<std::size_t>{2, 0, 1}),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4},
                        std::vector<std::size_t>{1, 2, 0}),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4},
                        std::vector<std::size_t>{0, 2, 1}),
        std::make_tuple(std::vector<std::uint64_t>{5, 1, 3},
                        std::vector<std::size_t>{2, 1, 0}),
        std::make_tuple(std::vector<std::uint64_t>{2, 2, 2, 2},
                        std::vector<std::size_t>{3, 1, 0, 2})));

class TransposeComponent : public ::testing::TestWithParam<int> {};

TEST_P(TransposeComponent, MovesQuantitiesFirst) {
    fp::Fabric fabric;
    const u::NdShape shape{4, 3};
    std::vector<double> data(12);
    std::iota(data.begin(), data.end(), 0.0);
    auto src = publish(fabric, "in.fp", "m", shape, {"pts", "q"}, {data, data},
                       {{"m.header.1", {"x", "y", "z"}}});
    std::jthread tr([&] {
        run_component(fabric, "transpose", GetParam(),
                      {"in.fp", "m", "1,0", "out.fp", "t"});
    });
    const Collected out = collect(fabric, "out.fp", "t");
    ASSERT_EQ(out.steps.size(), 2u);
    EXPECT_EQ(out.shape, (u::NdShape{3, 4}));
    EXPECT_EQ(out.labels, (std::vector<std::string>{"q", "pts"}));
    // Header follows its dimension: quantities are now dimension 0.
    EXPECT_EQ(out.attrs.at("t.header.0"), (std::vector<std::string>{"x", "y", "z"}));
    for (std::uint64_t q = 0; q < 3; ++q) {
        for (std::uint64_t p = 0; p < 4; ++p) {
            EXPECT_EQ(out.steps[0][q * 4 + p], data[p * 3 + q]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TransposeComponent, ::testing::Values(1, 3));

TEST(TransposeComponentBehavior, RankMismatchFails) {
    fp::Fabric fabric;
    auto src = publish(fabric, "in.fp", "m", u::NdShape{2, 2}, {},
                       {std::vector<double>(4, 0.0)});
    EXPECT_THROW(run_component(fabric, "transpose", 1,
                               {"in.fp", "m", "2,0,1", "out.fp", "t"}),
                 std::invalid_argument);
    fabric.abort_all();
}

// ---- downsample ---------------------------------------------------------------

class DownsampleComponent : public ::testing::TestWithParam<int> {};

TEST_P(DownsampleComponent, KeepsEveryKth) {
    fp::Fabric fabric;
    const u::NdShape shape{10, 2};
    std::vector<double> data(20);
    std::iota(data.begin(), data.end(), 0.0);
    auto src = publish(fabric, "in.fp", "a", shape, {"pts", "q"}, {data});
    std::jthread ds([&] {
        run_component(fabric, "downsample", GetParam(),
                      {"in.fp", "a", "0", "3", "out.fp", "d"});
    });
    const Collected out = collect(fabric, "out.fp", "d");
    EXPECT_EQ(out.shape, (u::NdShape{4, 2}));  // ceil(10/3) = 4 rows: 0,3,6,9
    EXPECT_EQ(out.steps.at(0),
              (std::vector<double>{0, 1, 6, 7, 12, 13, 18, 19}));
}

INSTANTIATE_TEST_SUITE_P(Ranks, DownsampleComponent, ::testing::Values(1, 2, 6));

TEST(DownsampleComponentBehavior, FiltersHeaderAndValidates) {
    fp::Fabric fabric;
    const u::NdShape shape{2, 4};
    std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8};
    auto src = publish(fabric, "in.fp", "a", shape, {}, {data},
                       {{"a.header.1", {"p", "q", "r", "s"}}});
    std::jthread ds([&] {
        run_component(fabric, "downsample", 1, {"in.fp", "a", "1", "2", "out.fp", "d"});
    });
    const Collected out = collect(fabric, "out.fp", "d");
    EXPECT_EQ(out.shape, (u::NdShape{2, 2}));
    EXPECT_EQ(out.steps.at(0), (std::vector<double>{1, 3, 5, 7}));
    EXPECT_EQ(out.attrs.at("d.header.1"), (std::vector<std::string>{"p", "r"}));
}

TEST(DownsampleComponentBehavior, ZeroStrideRejected) {
    fp::Fabric fabric;
    EXPECT_THROW(run_component(fabric, "downsample", 1,
                               {"in.fp", "a", "0", "0", "out.fp", "d"}),
                 u::ArgError);
}

// ---- threshold -----------------------------------------------------------------

TEST(ThresholdMode, Parse) {
    EXPECT_EQ(core::parse_threshold_mode("above"), core::ThresholdMode::Above);
    EXPECT_EQ(core::parse_threshold_mode("below"), core::ThresholdMode::Below);
    EXPECT_EQ(core::parse_threshold_mode("band"), core::ThresholdMode::Band);
    EXPECT_THROW((void)core::parse_threshold_mode("near"), u::ArgError);
}

class ThresholdComponent : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdComponent, AboveKeepsOrder) {
    fp::Fabric fabric;
    std::vector<double> data = {5, -1, 7, 0, 3, 10, -4, 6};
    auto src = publish(fabric, "in.fp", "x", u::NdShape{8}, {"i"}, {data});
    std::jthread th([&] {
        run_component(fabric, "threshold", GetParam(),
                      {"in.fp", "x", "above", "2.5", "out.fp", "big"});
    });
    const Collected out = collect(fabric, "out.fp", "big");
    EXPECT_EQ(out.steps.at(0), (std::vector<double>{5, 7, 3, 10, 6}));
    EXPECT_EQ(out.shape, (u::NdShape{5}));
    EXPECT_DOUBLE_EQ(out.dattrs.at("big.count"), 5.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ThresholdComponent, ::testing::Values(1, 2, 4));

TEST(ThresholdComponentBehavior, BandAndEmptyResult) {
    fp::Fabric fabric;
    std::vector<double> s0 = {1, 2, 3, 4};
    std::vector<double> s1 = {10, 20, 30, 40};
    auto src = publish(fabric, "in.fp", "x", u::NdShape{4}, {}, {s0, s1});
    std::jthread th([&] {
        run_component(fabric, "threshold", 2,
                      {"in.fp", "x", "band", "2", "3", "out.fp", "mid"});
    });
    const Collected out = collect(fabric, "out.fp", "mid");
    ASSERT_EQ(out.steps.size(), 2u);
    EXPECT_EQ(out.steps[0], (std::vector<double>{2, 3}));
    EXPECT_TRUE(out.steps[1].empty());  // nothing in band on step 1
}

TEST(ThresholdComponentBehavior, BadBandRejected) {
    fp::Fabric fabric;
    EXPECT_THROW(run_component(fabric, "threshold", 1,
                               {"in.fp", "x", "band", "3", "2", "out.fp", "m"}),
                 u::ArgError);
}

// ---- moments -------------------------------------------------------------------

class DistributedMoments : public ::testing::TestWithParam<int> {};

TEST_P(DistributedMoments, MatchesClosedForm) {
    std::vector<double> all(200);
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = std::sin(0.7 * static_cast<double>(i)) * 3.0 + 1.0;
    }
    // Sequential reference.
    double s1 = 0, s2 = 0, s3 = 0;
    double lo = all[0], hi = all[0];
    for (double v : all) {
        s1 += v;
        s2 += v * v;
        s3 += v * v * v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double n = static_cast<double>(all.size());
    const double mean = s1 / n;
    const double var = s2 / n - mean * mean;
    const double skew =
        (s3 / n - 3 * mean * s2 / n + 2 * mean * mean * mean) / std::pow(var, 1.5);

    sb::mpi::run_ranks(GetParam(), [&](sb::mpi::Communicator& c) {
        const auto [off, cnt] = u::partition_range(all.size(), c.rank(), c.size());
        const auto m = core::distributed_moments(
            c, std::span(all).subspan(off, cnt), 9);
        EXPECT_EQ(m.step, 9u);
        EXPECT_EQ(m.count, all.size());
        EXPECT_NEAR(m.mean, mean, 1e-12);
        EXPECT_NEAR(m.variance, var, 1e-12);
        EXPECT_NEAR(m.skewness, skew, 1e-9);
        EXPECT_DOUBLE_EQ(m.min, lo);
        EXPECT_DOUBLE_EQ(m.max, hi);
    });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedMoments, ::testing::Values(1, 3, 7));

TEST(DistributedMomentsEdge, EmptyAndNan) {
    sb::mpi::run_ranks(2, [](sb::mpi::Communicator& c) {
        const auto m0 = core::distributed_moments(c, {}, 0);
        EXPECT_EQ(m0.count, 0u);
        const double with_nan[] = {std::nan(""), 2.0};
        const auto m1 = core::distributed_moments(
            c, c.rank() == 0 ? std::span<const double>(with_nan)
                             : std::span<const double>(),
            1);
        EXPECT_EQ(m1.count, 1u);
        EXPECT_DOUBLE_EQ(m1.mean, 2.0);
        EXPECT_DOUBLE_EQ(m1.skewness, 0.0);
    });
}

TEST(MomentsFile, RoundTrip) {
    const std::string path = tmp("sb_moments_rt.txt");
    std::ofstream out(path, std::ios::trunc);
    out << "# header\n";
    core::MomentsResult m{3, 100, 1.5, 0.25, -0.1, -2.0, 4.0};
    core::write_moments(out, m);
    out.close();
    const auto back = core::read_moments_file(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].step, 3u);
    EXPECT_EQ(back[0].count, 100u);
    EXPECT_DOUBLE_EQ(back[0].mean, 1.5);
    EXPECT_DOUBLE_EQ(back[0].skewness, -0.1);
    EXPECT_THROW((void)core::read_moments_file("/no/such"), std::runtime_error);
}

TEST(MomentsComponent, EndToEndAgainstHistogramData) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 2, {"atoms=50", "steps=3"});
    wf.add("magnitude", 2, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("moments", 2, {"m.fp", "r", tmp("sb_moments_e2e.txt")});
    wf.run();
    const auto rows = core::read_moments_file(tmp("sb_moments_e2e.txt"));
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& r : rows) {
        EXPECT_EQ(r.count, 50u);
        EXPECT_GE(r.min, 0.0);       // magnitudes are non-negative
        EXPECT_GE(r.mean, r.min);
        EXPECT_LE(r.mean, r.max);
        EXPECT_GE(r.variance, 0.0);
    }
    // The spread of the atoms grows.
    EXPECT_GT(rows.back().mean, rows.front().mean);
}

// ---- validate -------------------------------------------------------------------

TEST(ValidateComponent, IdenticalBranchesPass) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=30", "steps=2"});
    wf.add("fork", 2, {"gmx.fp", "coords", "b1.fp", "c1", "b2.fp", "c2"});
    wf.add("magnitude", 2, {"b1.fp", "c1", "m1.fp", "r1"});
    wf.add("magnitude", 1, {"b2.fp", "c2", "m2.fp", "r2"});
    wf.add("validate", 2, {"m1.fp", "r1", "m2.fp", "r2"});
    wf.run();  // must not throw
}

TEST(ValidateComponent, DivergentValuesFail) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=30", "steps=2"});
    wf.add("fork", 1, {"gmx.fp", "coords", "b1.fp", "c1", "b2.fp", "c2"});
    wf.add("magnitude", 1, {"b1.fp", "c1", "m1.fp", "r1"});
    // The second branch squares distances via all-pairs? No — just compare
    // magnitudes against raw x-coordinates, which differ.
    wf.add("select", 1, {"b2.fp", "c2", "1", "sx.fp", "x", "x"});
    wf.add("dim-reduce", 1, {"sx.fp", "x", "1", "0", "fx.fp", "xf"});
    wf.add("validate", 1, {"m1.fp", "r1", "fx.fp", "xf"});
    EXPECT_THROW(wf.run(), std::runtime_error);
}

TEST(ValidateComponent, ToleranceAllowsSmallDifferences) {
    fp::Fabric fabric;
    std::vector<double> da = {1.0, 2.0, 3.0};
    std::vector<double> db = {1.0 + 1e-9, 2.0 - 1e-9, 3.0};
    auto pa = publish(fabric, "a.fp", "x", u::NdShape{3}, {}, {da});
    auto pb = publish(fabric, "b.fp", "y", u::NdShape{3}, {}, {db});
    run_component(fabric, "validate", 1, {"a.fp", "x", "b.fp", "y", "1e-6"});
}

TEST(ValidateComponent, ShapeMismatchFails) {
    fp::Fabric fabric;
    auto pa = publish(fabric, "a.fp", "x", u::NdShape{3}, {},
                      {std::vector<double>{1, 2, 3}});
    auto pb = publish(fabric, "b.fp", "y", u::NdShape{4}, {},
                      {std::vector<double>{1, 2, 3, 4}});
    EXPECT_THROW(run_component(fabric, "validate", 1, {"a.fp", "x", "b.fp", "y"}),
                 std::runtime_error);
    fabric.abort_all();
}

TEST(ValidateComponent, StepCountMismatchFails) {
    fp::Fabric fabric;
    std::vector<double> d = {1, 2};
    auto pa = publish(fabric, "a.fp", "x", u::NdShape{2}, {}, {d, d});
    auto pb = publish(fabric, "b.fp", "y", u::NdShape{2}, {}, {d});
    EXPECT_THROW(run_component(fabric, "validate", 1, {"a.fp", "x", "b.fp", "y"}),
                 std::runtime_error);
    fabric.abort_all();
}

// ---- new components are launchable from scripts -----------------------------------

TEST(ExtendedRegistry, AllNewComponentsRegistered) {
    for (const char* name : {"reduce", "transpose", "downsample", "threshold",
                             "moments", "validate"}) {
        EXPECT_TRUE(core::component_registered(name)) << name;
        EXPECT_FALSE(core::make_component(name)->usage().empty());
    }
}

TEST(ExtendedWorkflow, MixedPipelineFromScript) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        // GTCP -> mean over toroidal dim -> transpose -> select by name ->
        // flatten -> threshold -> moments: seven generic components, zero
        // custom code.
        "aprun -n 2 gtcp slices=3 gridpoints=16 steps=2 &\n"
        "aprun -n 2 reduce gtcp.fp field3d 0 mean avg.fp a &\n"
        "aprun -n 1 transpose avg.fp a 1,0 tr.fp t &\n"
        "aprun -n 1 select tr.fp t 0 sel.fp s density temperature &\n"
        "aprun -n 1 dim-reduce sel.fp s 0 1 flat.fp f &\n"
        "aprun -n 2 threshold flat.fp f above 0.0 pos.fp p &\n"
        "aprun -n 1 moments pos.fp p " + tmp("sb_mixed_moments.txt") + " &\n");
    wf.run();
    const auto rows = core::read_moments_file(tmp("sb_mixed_moments.txt"));
    ASSERT_EQ(rows.size(), 2u);
    // Densities and temperatures are positive, so everything passes the
    // threshold: 16 gridpoints x 2 quantities.
    EXPECT_EQ(rows[0].count, 32u);
    EXPECT_GT(rows[0].mean, 0.0);
}

// ---- heatmap (in situ visualization endpoint) -----------------------------------

#include "core/heatmap.hpp"

TEST(HeatmapKernel, RenderScalesBetweenMinAndMax) {
    const double v[] = {0.0, 5.0, 10.0, 5.0};
    const auto px = core::render_gray(v, 2, 2, 1);
    ASSERT_EQ(px.size(), 4u);
    EXPECT_EQ(px[0], 0);
    EXPECT_EQ(px[1], 128);  // lround(127.5)
    EXPECT_EQ(px[2], 255);
    EXPECT_EQ(px[3], 128);
}

TEST(HeatmapKernel, FlatDataRendersMidGrayAndNanBlack) {
    const double v[] = {3.0, 3.0, std::nan(""), 3.0};
    const auto px = core::render_gray(v, 2, 2, 1);
    EXPECT_EQ(px[0], 128);
    EXPECT_EQ(px[2], 0);
}

TEST(HeatmapKernel, ScaleRepeatsPixels) {
    const double v[] = {0.0, 1.0};
    const auto px = core::render_gray(v, 1, 2, 3);
    ASSERT_EQ(px.size(), 1u * 3 * 2 * 3);
    // First 3 columns dark, next 3 bright, on every one of the 3 rows.
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            EXPECT_EQ(px[r * 6 + c], 0);
            EXPECT_EQ(px[r * 6 + 3 + c], 255);
        }
    }
}

TEST(HeatmapKernel, PgmRoundTrip) {
    const std::string path = tmp("sb_heatmap_rt.pgm");
    const std::vector<std::uint8_t> px = {0, 64, 128, 255, 1, 2};
    core::write_pgm(path, px, 3, 2);
    std::uint64_t w = 0, h = 0;
    EXPECT_EQ(core::read_pgm(path, w, h), px);
    EXPECT_EQ(w, 3u);
    EXPECT_EQ(h, 2u);
    EXPECT_THROW((void)core::read_pgm("/no/such.pgm", w, h), std::runtime_error);
}

class HeatmapComponent : public ::testing::TestWithParam<int> {};

TEST_P(HeatmapComponent, RendersEachStep) {
    fp::Fabric fabric;
    const std::string prefix = tmp("sb_heat_" + std::to_string(GetParam()));
    std::vector<double> s0 = {0, 1, 2, 3, 4, 5};        // gradient
    std::vector<double> s1 = {5, 4, 3, 2, 1, 0};        // reversed
    auto src = publish(fabric, "in.fp", "f", u::NdShape{2, 3}, {"y", "x"}, {s0, s1});
    run_component(fabric, "heatmap", GetParam(), {"in.fp", "f", prefix, "2"});

    std::uint64_t w = 0, h = 0;
    const auto img0 = core::read_pgm(prefix + ".0.pgm", w, h);
    EXPECT_EQ(w, 6u);  // 3 cols x scale 2
    EXPECT_EQ(h, 4u);
    EXPECT_EQ(img0.front(), 0);    // min at (0,0)
    EXPECT_EQ(img0.back(), 255);   // max at (1,2)
    const auto img1 = core::read_pgm(prefix + ".1.pgm", w, h);
    EXPECT_EQ(img1.front(), 255);  // reversed gradient
    EXPECT_EQ(img1.back(), 0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, HeatmapComponent, ::testing::Values(1, 3));

TEST(HeatmapComponentBehavior, RejectsNon2D) {
    fp::Fabric fabric;
    auto src = publish(fabric, "in.fp", "x", u::NdShape{4}, {},
                       {std::vector<double>(4, 1.0)});
    EXPECT_THROW(run_component(fabric, "heatmap", 1, {"in.fp", "x", tmp("h")}),
                 std::runtime_error);
    fabric.abort_all();
}

// A full sim -> viz workflow: GTCP's per-slice pressure field imaged per step.
TEST(HeatmapWorkflow, GtcpPressureImages) {
    sim::register_simulations();
    fp::Fabric fabric;
    const std::string prefix = tmp("sb_gtcp_img");
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 2 gtcp slices=6 gridpoints=20 steps=2 &\n"
        "aprun -n 1 select gtcp.fp field3d 2 p.fp pp perpendicular_pressure &\n"
        "aprun -n 1 dim-reduce p.fp pp 2 1 img.fp im &\n"  // (slices, gridpoints)
        "aprun -n 2 heatmap img.fp im " + prefix + " &\n");
    wf.run();
    std::uint64_t w = 0, h = 0;
    const auto img = core::read_pgm(prefix + ".1.pgm", w, h);
    EXPECT_EQ(w, 20u);
    EXPECT_EQ(h, 6u);
    EXPECT_EQ(img.size(), 120u);
}
