// Additional integration and edge-case coverage: out-of-lockstep writer
// ranks (regression for per-step contribution tracking), rendezvous
// workflows, attribute propagation of doubles, deep pipelines under tiny
// buffers, select-all and duplicate selections, and sim XML overrides.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "core/histogram.hpp"
#include "core/launch_script.hpp"
#include "core/registry.hpp"
#include "core/workflow.hpp"
#include "mpi/runtime.hpp"
#include "sim/source_component.hpp"

namespace core = sb::core;
namespace sim = sb::sim;
namespace fp = sb::flexpath;
namespace a = sb::adios;
namespace u = sb::util;

namespace {
std::string tmp(const std::string& name) { return ::testing::TempDir() + "/" + name; }
}

// Regression: writer ranks of one group running far out of lockstep must
// not mix contributions across steps (each rank's n-th submit is step n).
TEST(FlexpathRegression, WriterRanksOutOfLockstep) {
    fp::Fabric fabric;
    const u::NdShape shape{6, 2};
    constexpr std::uint64_t kSteps = 8;

    std::jthread writers([&] {
        sb::mpi::run_ranks(3, [&](sb::mpi::Communicator& c) {
            fp::WriterPort port(fabric, "skew", c.rank(), c.size(),
                                fp::StreamOptions{4});
            for (std::uint64_t t = 0; t < kSteps; ++t) {
                // Rank 2 lags behind every step; ranks 0/1 race ahead.
                if (c.rank() == 2) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(3));
                }
                port.declare(fp::VarDecl{"x", fp::DataKind::Float64, shape, {}});
                const u::Box box = u::partition_along(shape, 0, c.rank(), c.size());
                std::vector<double> data(box.volume(),
                                         static_cast<double>(t * 100 + c.rank()));
                port.put<double>("x", box, data);
                port.end_step();
            }
            port.close();
        });
    });

    fp::ReaderPort reader(fabric, "skew", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        EXPECT_EQ(reader.current_step(), t);
        const auto data = reader.read<double>("x", u::Box::whole(shape));
        // Rows 0-1 from writer rank 0, 2-3 from rank 1, 4-5 from rank 2.
        for (std::uint64_t row = 0; row < 6; ++row) {
            const double want = static_cast<double>(t * 100 + row / 2);
            EXPECT_EQ(data[row * 2], want) << "row " << row << " step " << t;
        }
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, kSteps);
}

// A full workflow where *every* stream is a rendezvous (queue capacity 0):
// the graph must still drain (this exercises the synchronous-handoff path
// end to end, the ablation's baseline).
TEST(WorkflowOptions, RendezvousStreamsComplete) {
    sim::register_simulations();
    fp::Fabric fabric;
    fp::StreamOptions opts;
    opts.queue_capacity = 0;
    core::Workflow wf(fabric, opts);
    wf.add("gromacs", 2, {"atoms=40", "steps=3"});
    wf.add("magnitude", 2, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "4", tmp("rendezvous_hist.txt")});
    wf.run();
    EXPECT_EQ(core::read_histogram_file(tmp("rendezvous_hist.txt")).size(), 3u);
}

// A five-stage pipeline under a depth-1 buffer with skewed process counts:
// a stress test of step ordering and backpressure through a deep graph.
TEST(WorkflowStress, DeepPipelineTinyBuffers) {
    sim::register_simulations();
    fp::Fabric fabric;
    fp::StreamOptions opts;
    opts.queue_capacity = 1;
    core::Workflow wf(fabric, opts);
    wf.add("gtcp", 3, {"slices=4", "gridpoints=30", "steps=6"});
    wf.add("select", 2,
           {"gtcp.fp", "field3d", "2", "p.fp", "pp", "perpendicular_pressure",
            "density"});
    wf.add("select", 3, {"p.fp", "pp", "2", "q.fp", "qq", "perpendicular_pressure"});
    wf.add("dim-reduce", 2, {"q.fp", "qq", "2", "1", "f1.fp", "x1"});
    wf.add("dim-reduce", 1, {"f1.fp", "x1", "0", "1", "f2.fp", "x2"});
    wf.add("histogram", 2, {"f2.fp", "x2", "8", tmp("deep_hist.txt")});
    wf.run();
    const auto hists = core::read_histogram_file(tmp("deep_hist.txt"));
    ASSERT_EQ(hists.size(), 6u);
    for (const auto& h : hists) EXPECT_EQ(h.total(), 4u * 30);
}

// Double attributes must propagate (and be renamed) through components.
TEST(AttributePropagation, DoubleAttributesSurviveSelect) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        a::GroupDef def = core::output_group("src", "arr", {"n", "q"});
        a::Writer w(fabric, "in.fp", def, 0, 1);
        w.begin_step();
        w.set_dimension("n", 2);
        w.set_dimension("q", 2);
        w.write_attribute("arr.header.1", {"p", "r"});
        w.write_attribute("arr.dt", 0.125);       // array-scoped: renamed
        w.write_attribute("sim_time", 7.5);       // global: passes through
        const std::vector<double> data = {1, 2, 3, 4};
        w.write<double>("arr", data, u::Box({0, 0}, {2, 2}));
        w.end_step();
        w.close();
    });
    std::jthread select([&] {
        sb::mpi::run_ranks(1, [&](sb::mpi::Communicator& c) {
            auto comp = core::make_component("select");
            core::RunContext ctx{fabric, c, nullptr, {}};
            comp->run(ctx, u::ArgList({"in.fp", "arr", "1", "out.fp", "sel", "p"}));
        });
    });
    a::Reader r(fabric, "out.fp", 0, 1);
    ASSERT_TRUE(r.begin_step());
    EXPECT_EQ(r.attribute_double("sel.dt"), 0.125);
    EXPECT_EQ(r.attribute_double("sim_time"), 7.5);
    EXPECT_FALSE(r.attribute_double("arr.dt").has_value());
    r.end_step();
    EXPECT_FALSE(r.begin_step());
}

// Selecting every name reproduces the input; selecting a name twice
// duplicates its row.
TEST(SelectEdgeCases, SelectAllAndDuplicates) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        a::GroupDef def = core::output_group("src", "m", {"rows", "cols"});
        a::Writer w(fabric, "in.fp", def, 0, 1);
        w.begin_step();
        w.set_dimension("rows", 2);
        w.set_dimension("cols", 3);
        w.write_attribute("m.header.1", {"a", "b", "c"});
        const std::vector<double> data = {1, 2, 3, 4, 5, 6};
        w.write<double>("m", data, u::Box({0, 0}, {2, 3}));
        w.end_step();
        w.close();
    });
    std::jthread select([&] {
        sb::mpi::run_ranks(2, [&](sb::mpi::Communicator& c) {
            auto comp = core::make_component("select");
            core::RunContext ctx{fabric, c, nullptr, {}};
            comp->run(ctx, u::ArgList({"in.fp", "m", "1", "out.fp", "s",
                                       "a", "b", "c", "b"}));
        });
    });
    a::Reader r(fabric, "out.fp", 0, 1);
    ASSERT_TRUE(r.begin_step());
    EXPECT_EQ(r.inq_var("s").shape, (u::NdShape{2, 4}));
    EXPECT_EQ(r.read<double>("s", u::Box({0, 0}, {2, 4})),
              (std::vector<double>{1, 2, 3, 2, 4, 5, 6, 5}));
    r.end_step();
}

// Magnitude on 1-component vectors is |x|.
TEST(MagnitudeEdgeCases, SingleComponentVectors) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        a::GroupDef def = core::output_group("src", "v", {"n", "k"});
        a::Writer w(fabric, "in.fp", def, 0, 1);
        w.begin_step();
        w.set_dimension("n", 4);
        w.set_dimension("k", 1);
        const std::vector<double> data = {-3, 0, 2.5, -1};
        w.write<double>("v", data, u::Box({0, 0}, {4, 1}));
        w.end_step();
        w.close();
    });
    std::jthread mag([&] {
        sb::mpi::run_ranks(1, [&](sb::mpi::Communicator& c) {
            auto comp = core::make_component("magnitude");
            core::RunContext ctx{fabric, c, nullptr, {}};
            comp->run(ctx, u::ArgList({"in.fp", "v", "out.fp", "m"}));
        });
    });
    a::Reader r(fabric, "out.fp", 0, 1);
    ASSERT_TRUE(r.begin_step());
    EXPECT_EQ(r.read<double>("m", u::Box({0}, {4})),
              (std::vector<double>{3, 0, 2.5, 1}));
    r.end_step();
}

// The sims accept an external ADIOS XML config (the deck's xml= key) —
// the paper's "~25-line XML file" integration path.
TEST(SimXmlOverride, LammpsUsesConfigFile) {
    sim::register_simulations();
    const std::string xml_path = tmp("lammps_override.xml");
    std::ofstream(xml_path) << R"(<adios-config>
  <adios-group name="particle_dump">
    <var name="natoms" type="unsigned long"/>
    <var name="nquantities" type="unsigned long"/>
    <var name="atoms" type="double" dimensions="natoms,nquantities"/>
    <attribute name="atoms.header.1" value="ID,Type,vx,vy,vz"/>
    <attribute name="provenance" value="override-config"/>
  </adios-group>
  <transport group="particle_dump" method="FLEXPATH"/>
</adios-config>)";

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("lammps", 2, {"rows=6", "cols=4", "steps=1", "xml=" + xml_path});

    std::jthread driver([&] { wf.run(); });
    a::Reader r(fabric, "dump.custom.fp", 0, 1);
    ASSERT_TRUE(r.begin_step());
    EXPECT_EQ(r.attribute_strings("provenance"),
              (std::vector<std::string>{"override-config"}));
    r.end_step();
    while (r.begin_step()) r.end_step();
}

// The histogram component's default output file name.
TEST(HistogramDefaults, DefaultFileName) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=8", "steps=1"});
    wf.add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "spread"});
    wf.add("histogram", 1, {"m.fp", "spread", "4"});
    wf.run();
    const auto hists = core::read_histogram_file("histogram_spread.txt");
    ASSERT_EQ(hists.size(), 1u);
    EXPECT_EQ(hists[0].total(), 8u);
    std::remove("histogram_spread.txt");
}

// Empty byte payloads and mismatched receive sizes in the runtime.
TEST(MpiEdgeCases, EmptyPayloadAndSizeMismatch) {
    sb::mpi::run_ranks(2, [](sb::mpi::Communicator& c) {
        if (c.rank() == 0) {
            c.send_bytes(1, 0, {});
            c.send_bytes(1, 1, sb::mpi::Bytes(3));  // 3 bytes: not a double
        } else {
            EXPECT_TRUE(c.recv_bytes(0, 0).empty());
            EXPECT_THROW((void)c.recv<double>(0, 1), std::runtime_error);
        }
    });
}

// Stream introspection used by the benches.
TEST(StreamIntrospection, QueuedStepsAndWriterAttached) {
    fp::Fabric fabric;
    auto s = fabric.get("intro");
    EXPECT_FALSE(s->writer_attached());
    EXPECT_EQ(s->queued_steps(), 0u);
    fp::WriterPort port(fabric, "intro", 0, 1, fp::StreamOptions{4});
    EXPECT_TRUE(s->writer_attached());
    port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{1}, {}});
    const std::vector<double> v = {1.0};
    port.put<double>("x", u::Box({0}, {1}), v);
    port.end_step();
    EXPECT_EQ(s->queued_steps(), 1u);
    port.close();
}

// A launch-script workflow whose components have wildly mismatched
// process counts in both directions (expanding and contracting).
TEST(WorkflowStress, ExpandingAndContractingParallelism) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 1 gromacs atoms=60 steps=2 &\n"
        "aprun -n 7 magnitude gmx.fp coords m.fp r &\n"
        "aprun -n 2 all-pairs m.fp r ap.fp d &\n"
        "aprun -n 5 dim-reduce ap.fp d 1 0 flat.fp f &\n"
        "aprun -n 3 histogram flat.fp f 6 " + tmp("expand_hist.txt") + " &\n");
    wf.run();
    const auto hists = core::read_histogram_file(tmp("expand_hist.txt"));
    ASSERT_EQ(hists.size(), 2u);
    EXPECT_EQ(hists[0].total(), 3600u);  // 60^2 pairwise distances
}

// ---- disk spooling of buffered steps ------------------------------------------

TEST(SpoolEncoding, BlocksRoundTrip) {
    std::map<std::string, std::vector<fp::Block>> blocks;
    auto buf = std::make_shared<const std::vector<std::byte>>(
        std::vector<std::byte>{std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4},
                               std::byte{5}, std::byte{6}, std::byte{7}, std::byte{8}});
    blocks["a"].push_back(fp::Block{u::Box({0}, {1}), buf});
    blocks["a"].push_back(fp::Block{u::Box({1}, {1}), buf});
    blocks["b"].push_back(fp::Block{u::Box({2, 0}, {1, 1}), buf});

    const auto wire = fp::encode_step_blocks(blocks);
    const auto back = fp::decode_step_blocks(wire);
    ASSERT_EQ(back.size(), 2u);
    ASSERT_EQ(back.at("a").size(), 2u);
    EXPECT_EQ(back.at("a")[0].box, (u::Box({0}, {1})));
    EXPECT_EQ(back.at("a")[1].box, (u::Box({1}, {1})));
    EXPECT_EQ(*back.at("b")[0].data, *buf);
}

TEST(Spool, BufferedStepsParkOnDiskAndLoadBack) {
    const std::string dir = tmp("spool_test");
    std::filesystem::create_directories(dir);
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
        std::filesystem::remove(e.path());
    }

    fp::Fabric fabric;
    fp::StreamOptions opts;
    opts.queue_capacity = 8;
    opts.spool_dir = dir;
    {
        fp::WriterPort port(fabric, "spooled", 0, 1, opts);
        for (std::uint64_t t = 0; t < 3; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{4}, {}});
            std::vector<double> v(4, static_cast<double>(t));
            port.put<double>("x", u::Box({0}, {4}), v);
            port.end_step();
        }
        // All three steps are buffered: their data must live on disk now.
        std::size_t files = 0;
        for (const auto& e : std::filesystem::directory_iterator(dir)) {
            (void)e;
            ++files;
        }
        EXPECT_EQ(files, 3u);
        port.close();
    }

    fp::ReaderPort reader(fabric, "spooled", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 3u);
    // Spool files are consumed as steps are acquired.
    std::size_t files = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 0u);
}

TEST(Spool, WorkflowProducesIdenticalResults) {
    sim::register_simulations();
    const std::string dir = tmp("spool_wf");
    std::filesystem::create_directories(dir);

    const auto run_with = [&](const fp::StreamOptions& opts, const std::string& file) {
        fp::Fabric fabric;
        core::Workflow wf(fabric, opts);
        wf.add("gromacs", 2, {"atoms=64", "steps=4"});
        wf.add("magnitude", 2, {"gmx.fp", "coords", "m.fp", "r"});
        wf.add("histogram", 1, {"m.fp", "r", "8", file});
        wf.run();
    };
    fp::StreamOptions mem;
    run_with(mem, tmp("spool_mem_hist.txt"));
    fp::StreamOptions disk;
    disk.queue_capacity = 4;
    disk.spool_dir = dir;
    run_with(disk, tmp("spool_disk_hist.txt"));

    EXPECT_EQ(core::read_histogram_file(tmp("spool_mem_hist.txt")),
              core::read_histogram_file(tmp("spool_disk_hist.txt")));
}

// ---- workflow timeline trace ----------------------------------------------------

TEST(WorkflowTrace, ChromeTraceEventsWritten) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=16", "steps=2"});
    wf.add("magnitude", 2, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "4", tmp("trace_hist.txt")});
    EXPECT_THROW(wf.write_trace(tmp("never.json")), std::logic_error);  // before run
    wf.run();

    const std::string path = tmp("trace.json");
    wf.write_trace(path);
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("magnitude x2"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"bytes_in\""), std::string::npos);
    // Magnitude ran 2 steps on 2 ranks: at least 4 slices plus histogram's.
    std::size_t slices = 0;
    for (std::size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
         ++pos) {
        ++slices;
    }
    EXPECT_GE(slices, 6u);
}
