// Tests for the generic SmartBlock components: the Select / Magnitude /
// Dim-Reduce / Histogram kernels and each component end-to-end through the
// real transport, plus the future-work components (Fork, file endpoints,
// All-Pairs) and the attribute-propagation rules.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "core/dim_reduce.hpp"
#include "core/file_io.hpp"
#include "core/histogram.hpp"
#include "core/registry.hpp"
#include "mpi/runtime.hpp"

namespace core = sb::core;
namespace fp = sb::flexpath;
namespace a = sb::adios;
namespace u = sb::util;

namespace {

/// Runs one component instance over n ranks; blocks until it finishes.
void run_component(fp::Fabric& fabric, const std::string& name, int nprocs,
                   std::vector<std::string> args) {
    sb::mpi::run_ranks(nprocs, [&](sb::mpi::Communicator& comm) {
        auto c = core::make_component(name);
        core::RunContext ctx{fabric, comm, nullptr, {}};
        c->run(ctx, u::ArgList(args));
    });
}

/// One synthetic upstream step.
struct SourceStep {
    std::vector<double> data;  // row-major, full array
    std::map<std::string, std::vector<std::string>> attrs;
};

/// Publishes `steps` on stream `stream` as array `array` with the given
/// shape/labels, from a single writer rank.  Returns the running thread.
std::jthread publish(fp::Fabric& fabric, const std::string& stream,
                     const std::string& array, u::NdShape shape,
                     std::vector<std::string> labels,
                     std::vector<SourceStep> steps) {
    labels.resize(shape.ndim());  // pad so every dimension gets a name
    return std::jthread([&fabric, stream, array, shape = std::move(shape),
                         labels = std::move(labels), steps = std::move(steps)] {
        a::GroupDef def = core::output_group("test-source", array, labels);
        a::Writer w(fabric, stream, def, 0, 1);
        const auto& dim_names = def.find(array)->dimensions;
        for (const SourceStep& s : steps) {
            w.begin_step();
            for (std::size_t d = 0; d < shape.ndim(); ++d) {
                w.set_dimension(dim_names[d], shape[d]);
            }
            for (const auto& [k, v] : s.attrs) w.write_attribute(k, v);
            w.write<double>(array, s.data, u::Box::whole(shape));
            w.end_step();
        }
        w.close();
    });
}

/// Collects every step of a stream (full arrays + metadata) on one rank.
struct Collected {
    std::vector<std::vector<double>> steps;
    u::NdShape shape;
    std::vector<std::string> labels;
    std::map<std::string, std::vector<std::string>> attrs;  // of the last step
};

Collected collect(fp::Fabric& fabric, const std::string& stream,
                  const std::string& array) {
    Collected out;
    a::Reader r(fabric, stream, 0, 1);
    while (r.begin_step()) {
        const a::VarInfo info = r.inq_var(array);
        out.shape = info.shape;
        out.labels = info.dim_labels;
        out.attrs = r.string_attributes();
        out.steps.push_back(r.read<double>(array, u::Box::whole(info.shape)));
        r.end_step();
    }
    return out;
}

}  // namespace

// ---- dim-reduce kernel -----------------------------------------------------

TEST(DimReduceShape, RemovesAndGrows) {
    EXPECT_EQ(core::dim_reduce_shape(u::NdShape{4, 5, 7}, 2, 1), (u::NdShape{4, 35}));
    EXPECT_EQ(core::dim_reduce_shape(u::NdShape{4, 5, 7}, 0, 1), (u::NdShape{20, 7}));
    EXPECT_EQ(core::dim_reduce_shape(u::NdShape{4, 5}, 0, 1), (u::NdShape{20}));
    EXPECT_EQ(core::dim_reduce_shape(u::NdShape{4, 5}, 1, 0), (u::NdShape{20}));
}

TEST(DimReduceShape, PreservesVolume) {
    const u::NdShape s{3, 4, 5, 2};
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t g = 0; g < 4; ++g) {
            if (r == g) continue;
            EXPECT_EQ(core::dim_reduce_shape(s, r, g).volume(), s.volume());
        }
    }
}

TEST(DimReduceShape, BadDimsThrow) {
    EXPECT_THROW((void)core::dim_reduce_shape(u::NdShape{4, 5}, 1, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)core::dim_reduce_shape(u::NdShape{4, 5}, 2, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)core::dim_reduce_shape(u::NdShape{4}, 0, 1),
                 std::invalid_argument);
}

namespace {

/// Reference implementation: out[..., g*Nr + r, ...] = in[..., g, ..., r, ...]
/// via explicit multi-index arithmetic.
std::vector<double> dim_reduce_reference(const std::vector<double>& in,
                                         const u::NdShape& shape, std::size_t remove,
                                         std::size_t grow) {
    const u::NdShape out_shape = core::dim_reduce_shape(shape, remove, grow);
    std::vector<double> out(in.size());
    const std::uint64_t n = shape.volume();
    std::vector<std::uint64_t> idx(shape.ndim(), 0);
    for (std::uint64_t lin = 0; lin < n; ++lin) {
        // Build the output multi-index.
        std::vector<std::uint64_t> oidx;
        oidx.reserve(shape.ndim() - 1);
        for (std::size_t d = 0; d < shape.ndim(); ++d) {
            if (d == remove) continue;
            oidx.push_back(d == grow ? idx[grow] * shape[remove] + idx[remove]
                                     : idx[d]);
        }
        out[out_shape.linear_index(oidx)] = in[lin];
        for (std::size_t d = shape.ndim(); d-- > 0;) {
            if (++idx[d] < shape[d]) break;
            idx[d] = 0;
        }
    }
    return out;
}

}  // namespace

class DimReduceKernel
    : public ::testing::TestWithParam<
          std::tuple<std::vector<std::uint64_t>, std::size_t, std::size_t>> {};

TEST_P(DimReduceKernel, MatchesReference) {
    const auto& [dims, remove, grow] = GetParam();
    const u::NdShape shape(dims);
    std::vector<double> in(shape.volume());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<double>(i);

    const std::vector<double> expected = dim_reduce_reference(in, shape, remove, grow);
    std::vector<double> got(in.size());
    core::dim_reduce_copy(std::as_bytes(std::span(in)), shape, remove, grow,
                          std::as_writable_bytes(std::span(got)), sizeof(double));
    EXPECT_EQ(got, expected) << "shape " << shape.to_string() << " remove " << remove
                             << " grow " << grow;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DimReduceKernel,
    ::testing::Values(
        std::make_tuple(std::vector<std::uint64_t>{3, 4}, 0u, 1u),
        std::make_tuple(std::vector<std::uint64_t>{3, 4}, 1u, 0u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4}, 2u, 1u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4}, 0u, 1u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4}, 0u, 2u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4}, 1u, 2u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4}, 1u, 0u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4}, 2u, 0u),
        std::make_tuple(std::vector<std::uint64_t>{5, 1, 6}, 1u, 0u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4, 5}, 1u, 3u),
        std::make_tuple(std::vector<std::uint64_t>{2, 3, 4, 5}, 3u, 0u),
        std::make_tuple(std::vector<std::uint64_t>{7, 2}, 1u, 0u)));

TEST(DimReduceKernel, GtcpFlattenIsIdentityOrder) {
    // Removing the last (quantity) dim into the gridpoint dim of a
    // row-major array is exactly the linear layout: no reorder.
    const u::NdShape shape{2, 3, 4};
    std::vector<double> in(24);
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<double>(i);
    std::vector<double> got(24);
    core::dim_reduce_copy(std::as_bytes(std::span(in)), shape, 2, 1,
                          std::as_writable_bytes(std::span(got)), sizeof(double));
    EXPECT_EQ(got, in);
}

// ---- histogram kernel ------------------------------------------------------

TEST(HistogramCounts, BasicBinning) {
    const double v[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
    const auto c = core::histogram_counts(v, 0.0, 4.0, 4);
    // Last bin's upper edge is inclusive: 4.0 lands in bin 3.
    EXPECT_EQ(c, (std::vector<std::uint64_t>{2, 2, 2, 3}));
}

TEST(HistogramCounts, AllEqualValuesGoToBinZero) {
    const double v[] = {2.0, 2.0, 2.0};
    const auto c = core::histogram_counts(v, 2.0, 2.0, 5);
    EXPECT_EQ(c, (std::vector<std::uint64_t>{3, 0, 0, 0, 0}));
}

TEST(HistogramCounts, NanSkipped) {
    const double v[] = {1.0, std::nan(""), 2.0};
    const auto c = core::histogram_counts(v, 1.0, 2.0, 2);
    EXPECT_EQ(c[0] + c[1], 2u);
}

TEST(HistogramCounts, OutOfRangeClampsToEdgeBins) {
    const double v[] = {-5.0, 100.0};
    const auto c = core::histogram_counts(v, 0.0, 10.0, 4);
    EXPECT_EQ(c, (std::vector<std::uint64_t>{1, 0, 0, 1}));
}

TEST(HistogramCounts, ZeroBinsThrows) {
    EXPECT_THROW((void)core::histogram_counts({}, 0, 1, 0), std::invalid_argument);
}

TEST(HistogramCounts, TotalAlwaysMatchesFiniteCount) {
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i) v.push_back(std::sin(i * 0.1) * 7.0);
    for (std::size_t bins : {1u, 2u, 7u, 64u}) {
        const auto c = core::histogram_counts(v, -7.0, 7.0, bins);
        std::uint64_t total = 0;
        for (auto x : c) total += x;
        EXPECT_EQ(total, v.size());
    }
}

TEST(HistogramResult, BinEdges) {
    core::HistogramResult h;
    h.min = 0.0;
    h.max = 10.0;
    h.counts = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
    EXPECT_DOUBLE_EQ(h.bin_lo(3), 7.5);
    EXPECT_DOUBLE_EQ(h.bin_hi(3), 10.0);
    EXPECT_EQ(h.total(), 10u);
}

TEST(HistogramFile, WriteReadRoundTrip) {
    const std::string path = ::testing::TempDir() + "/sb_hist_roundtrip.txt";
    std::ofstream out(path, std::ios::trunc);
    core::HistogramResult h1{0, -1.0, 3.0, {5, 0, 7}};
    core::HistogramResult h2{1, 0.5, 0.5, {9}};
    core::write_histogram(out, h1);
    core::write_histogram(out, h2);
    out.close();

    const auto back = core::read_histogram_file(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0], h1);
    EXPECT_EQ(back[1], h2);
    EXPECT_THROW((void)core::read_histogram_file("/no/such/file"), std::runtime_error);
}

class DistributedHistogram : public ::testing::TestWithParam<int> {};

TEST_P(DistributedHistogram, MatchesSequential) {
    const int nranks = GetParam();
    std::vector<double> all(257);
    for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = std::cos(static_cast<double>(i) * 0.37) * 5.0;
    }
    double lo = all[0], hi = all[0];
    for (double x : all) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    const auto expected = core::histogram_counts(all, lo, hi, 16);

    sb::mpi::run_ranks(nranks, [&](sb::mpi::Communicator& c) {
        const auto [off, cnt] = u::partition_range(all.size(), c.rank(), c.size());
        const auto h = core::distributed_histogram(
            c, std::span(all).subspan(off, cnt), 16, 3);
        EXPECT_EQ(h.step, 3u);
        EXPECT_DOUBLE_EQ(h.min, lo);
        EXPECT_DOUBLE_EQ(h.max, hi);
        EXPECT_EQ(h.counts, expected);
    });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedHistogram, ::testing::Values(1, 2, 5, 9));

TEST(DistributedHistogram, AllEmptyRanks) {
    sb::mpi::run_ranks(3, [](sb::mpi::Communicator& c) {
        const auto h = core::distributed_histogram(c, {}, 4, 0);
        EXPECT_EQ(h.counts, std::vector<std::uint64_t>(4, 0));
        EXPECT_EQ(h.total(), 0u);
    });
}

// ---- Select component ------------------------------------------------------

class SelectComponent : public ::testing::TestWithParam<int> {};

TEST_P(SelectComponent, FiltersNamedRows) {
    const int nprocs = GetParam();
    fp::Fabric fabric;
    // (6 particles x 5 quantities); quantity q of particle i = i*10 + q.
    std::vector<double> data(30);
    for (std::uint64_t i = 0; i < 6; ++i) {
        for (std::uint64_t q = 0; q < 5; ++q) data[i * 5 + q] = double(i * 10 + q);
    }
    auto src = publish(fabric, "in.fp", "atoms", u::NdShape{6, 5},
                       {"particles", "quantities"},
                       {SourceStep{data, {{"atoms.header.1",
                                           {"ID", "Type", "vx", "vy", "vz"}}}},
                        SourceStep{data, {{"atoms.header.1",
                                           {"ID", "Type", "vx", "vy", "vz"}}}}});

    std::jthread select([&] {
        run_component(fabric, "select", nprocs,
                      {"in.fp", "atoms", "1", "out.fp", "sel", "vx", "vy", "vz"});
    });

    const Collected out = collect(fabric, "out.fp", "sel");
    ASSERT_EQ(out.steps.size(), 2u);
    EXPECT_EQ(out.shape, (u::NdShape{6, 3}));
    EXPECT_EQ(out.labels, (std::vector<std::string>{"particles", "quantities"}));
    EXPECT_EQ(out.attrs.at("sel.header.1"),
              (std::vector<std::string>{"vx", "vy", "vz"}));
    for (std::uint64_t i = 0; i < 6; ++i) {
        for (std::uint64_t q = 0; q < 3; ++q) {
            EXPECT_EQ(out.steps[0][i * 3 + q], double(i * 10 + q + 2));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, SelectComponent, ::testing::Values(1, 2, 4, 9));

TEST(SelectComponentBehavior, ReordersByRequestOrder) {
    fp::Fabric fabric;
    std::vector<double> data = {1, 2, 3};
    auto src = publish(fabric, "in.fp", "a", u::NdShape{1, 3}, {},
                       {SourceStep{data, {{"a.header.1", {"x", "y", "z"}}}}});
    std::jthread select([&] {
        run_component(fabric, "select", 1, {"in.fp", "a", "1", "out.fp", "b", "z", "x"});
    });
    const Collected out = collect(fabric, "out.fp", "b");
    EXPECT_EQ(out.steps.at(0), (std::vector<double>{3, 1}));
    EXPECT_EQ(out.attrs.at("b.header.1"), (std::vector<std::string>{"z", "x"}));
}

TEST(SelectComponentBehavior, SelectsInFirstDimension) {
    fp::Fabric fabric;
    // 3 rows named alpha/beta/gamma, 2 columns.
    std::vector<double> data = {1, 2, 3, 4, 5, 6};
    auto src = publish(fabric, "in.fp", "m", u::NdShape{3, 2}, {"rows", "cols"},
                       {SourceStep{data, {{"m.header.0", {"alpha", "beta", "gamma"}}}}});
    std::jthread select([&] {
        run_component(fabric, "select", 2, {"in.fp", "m", "0", "out.fp", "s", "gamma"});
    });
    const Collected out = collect(fabric, "out.fp", "s");
    EXPECT_EQ(out.shape, (u::NdShape{1, 2}));
    EXPECT_EQ(out.steps.at(0), (std::vector<double>{5, 6}));
}

TEST(SelectComponentBehavior, UnknownNameFailsListingAvailable) {
    fp::Fabric fabric;
    std::vector<double> data = {1, 2};
    auto src = publish(fabric, "in.fp", "a", u::NdShape{1, 2}, {},
                       {SourceStep{data, {{"a.header.1", {"p", "q"}}}}});
    try {
        run_component(fabric, "select", 1, {"in.fp", "a", "1", "out.fp", "b", "zz"});
        FAIL() << "expected failure";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("zz"), std::string::npos);
        EXPECT_NE(msg.find("p, q"), std::string::npos);
    }
    fabric.abort_all();  // unblock the publisher before joining it
}

TEST(SelectComponentBehavior, MissingHeaderFails) {
    fp::Fabric fabric;
    std::vector<double> data = {1, 2};
    auto src = publish(fabric, "in.fp", "a", u::NdShape{1, 2}, {}, {SourceStep{data, {}}});
    EXPECT_THROW(run_component(fabric, "select", 1,
                               {"in.fp", "a", "1", "out.fp", "b", "p"}),
                 std::runtime_error);
    fabric.abort_all();
}

TEST(SelectComponentBehavior, DimensionOutOfRangeFails) {
    fp::Fabric fabric;
    std::vector<double> data = {1, 2};
    auto src = publish(fabric, "in.fp", "a", u::NdShape{1, 2}, {},
                       {SourceStep{data, {{"a.header.1", {"p", "q"}}}}});
    EXPECT_THROW(run_component(fabric, "select", 1,
                               {"in.fp", "a", "7", "out.fp", "b", "p"}),
                 std::runtime_error);
    fabric.abort_all();
}

TEST(SelectComponentBehavior, TooFewArgsFails) {
    fp::Fabric fabric;
    EXPECT_THROW(run_component(fabric, "select", 1, {"in.fp", "a", "1"}), u::ArgError);
}

// ---- Magnitude component ---------------------------------------------------

class MagnitudeComponent : public ::testing::TestWithParam<int> {};

TEST_P(MagnitudeComponent, ComputesEuclideanNorm) {
    const int nprocs = GetParam();
    fp::Fabric fabric;
    const std::uint64_t n = 11;
    std::vector<double> vecs(n * 3);
    for (std::uint64_t i = 0; i < n; ++i) {
        vecs[i * 3 + 0] = double(i);
        vecs[i * 3 + 1] = double(i) * 2.0;
        vecs[i * 3 + 2] = -double(i);
    }
    auto src = publish(fabric, "v.fp", "vel", u::NdShape{n, 3},
                       {"particles", "components"}, {SourceStep{vecs, {}}});
    std::jthread mag([&] {
        run_component(fabric, "magnitude", nprocs, {"v.fp", "vel", "m.fp", "mags"});
    });
    const Collected out = collect(fabric, "m.fp", "mags");
    EXPECT_EQ(out.shape, (u::NdShape{n}));
    EXPECT_EQ(out.labels, (std::vector<std::string>{"particles"}));
    for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(out.steps.at(0)[i], std::sqrt(6.0) * double(i), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, MagnitudeComponent, ::testing::Values(1, 3, 13));

TEST(MagnitudeComponentBehavior, RejectsNon2D) {
    fp::Fabric fabric;
    std::vector<double> data(8, 1.0);
    auto src = publish(fabric, "v.fp", "x", u::NdShape{2, 2, 2}, {},
                       {SourceStep{data, {}}});
    EXPECT_THROW(run_component(fabric, "magnitude", 1, {"v.fp", "x", "m.fp", "m"}),
                 std::runtime_error);
    fabric.abort_all();
}

// ---- DimReduce component ----------------------------------------------------

class DimReduceComponent : public ::testing::TestWithParam<int> {};

TEST_P(DimReduceComponent, GtcpDoubleReduce) {
    const int nprocs = GetParam();
    fp::Fabric fabric;
    const u::NdShape shape{3, 8, 2};
    std::vector<double> data(shape.volume());
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);

    auto src = publish(fabric, "g.fp", "f", shape,
                       {"toroidal", "gridpoint", "quantity"}, {SourceStep{data, {}}});
    std::jthread dr1([&] {
        run_component(fabric, "dim-reduce", nprocs, {"g.fp", "f", "2", "1", "d1.fp", "f1"});
    });
    std::jthread dr2([&] {
        run_component(fabric, "dim-reduce", nprocs, {"d1.fp", "f1", "0", "1", "d2.fp", "f2"});
    });

    const Collected out = collect(fabric, "d2.fp", "f2");
    EXPECT_EQ(out.shape, (u::NdShape{48}));
    EXPECT_EQ(out.labels, (std::vector<std::string>{"gridpoint"}));

    // Expected: first reduce is layout-preserving; the second interleaves
    // the toroidal dim inside the grown gridpoint dim.
    const auto r1 = dim_reduce_reference(data, shape, 2, 1);
    const auto expected = dim_reduce_reference(r1, u::NdShape{3, 16}, 0, 1);
    EXPECT_EQ(out.steps.at(0), expected);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DimReduceComponent, ::testing::Values(1, 2, 5));

TEST(DimReduceComponentBehavior, PropagatesUntouchedDimHeader) {
    fp::Fabric fabric;
    const u::NdShape shape{2, 3, 4};
    std::vector<double> data(shape.volume(), 1.0);
    auto src = publish(fabric, "in.fp", "a", shape, {"x", "y", "z"},
                       {SourceStep{data,
                                   {{"a.header.0", {"s0", "s1"}},
                                    {"a.header.2", {"q0", "q1", "q2", "q3"}}}}});
    // Remove dim 2, grow dim 1: dim 0's header must survive (still dim 0);
    // dim 2's header is consumed.
    std::jthread dr([&] {
        run_component(fabric, "dim-reduce", 1, {"in.fp", "a", "2", "1", "out.fp", "b"});
    });
    const Collected out = collect(fabric, "out.fp", "b");
    EXPECT_EQ(out.attrs.at("b.header.0"), (std::vector<std::string>{"s0", "s1"}));
    EXPECT_EQ(out.attrs.count("b.header.2"), 0u);
    EXPECT_EQ(out.attrs.count("b.header.1"), 0u);
}

TEST(DimReduceComponentBehavior, InvalidDimsFail) {
    fp::Fabric fabric;
    std::vector<double> data(6, 0.0);
    auto src = publish(fabric, "in.fp", "a", u::NdShape{2, 3}, {},
                       {SourceStep{data, {}}});
    EXPECT_THROW(run_component(fabric, "dim-reduce", 1,
                               {"in.fp", "a", "1", "1", "out.fp", "b"}),
                 std::invalid_argument);
    fabric.abort_all();
}

// ---- Histogram component ----------------------------------------------------

class HistogramComponent : public ::testing::TestWithParam<int> {};

TEST_P(HistogramComponent, WritesPerStepHistograms) {
    const int nprocs = GetParam();
    fp::Fabric fabric;
    const std::string file =
        ::testing::TempDir() + "/sb_hist_" + std::to_string(nprocs) + ".txt";

    std::vector<SourceStep> steps;
    std::vector<std::vector<double>> raw;
    for (int t = 0; t < 3; ++t) {
        std::vector<double> v(40);
        for (std::size_t i = 0; i < v.size(); ++i) {
            v[i] = std::sin(0.1 * double(i) + t) * (t + 1);
        }
        raw.push_back(v);
        steps.push_back(SourceStep{v, {}});
    }
    auto src = publish(fabric, "h.fp", "vals", u::NdShape{40}, {"i"}, steps);
    run_component(fabric, "histogram", nprocs, {"h.fp", "vals", "8", file});

    const auto hists = core::read_histogram_file(file);
    ASSERT_EQ(hists.size(), 3u);
    for (int t = 0; t < 3; ++t) {
        double lo = raw[t][0], hi = raw[t][0];
        for (double x : raw[t]) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        EXPECT_EQ(hists[t].step, static_cast<std::uint64_t>(t));
        EXPECT_DOUBLE_EQ(hists[t].min, lo);
        EXPECT_DOUBLE_EQ(hists[t].max, hi);
        EXPECT_EQ(hists[t].counts, core::histogram_counts(raw[t], lo, hi, 8));
        EXPECT_EQ(hists[t].total(), 40u);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HistogramComponent, ::testing::Values(1, 2, 7));

TEST(HistogramComponentBehavior, RejectsNon1D) {
    fp::Fabric fabric;
    std::vector<double> data(4, 0.0);
    auto src = publish(fabric, "h.fp", "m", u::NdShape{2, 2}, {},
                       {SourceStep{data, {}}});
    EXPECT_THROW(run_component(fabric, "histogram", 1, {"h.fp", "m", "4"}),
                 std::runtime_error);
    fabric.abort_all();
}

TEST(HistogramComponentBehavior, ZeroBinsRejected) {
    fp::Fabric fabric;
    EXPECT_THROW(run_component(fabric, "histogram", 1, {"h.fp", "m", "0"}),
                 u::ArgError);
}

// ---- Fork -------------------------------------------------------------------

TEST(ForkComponent, DuplicatesToAllBranches) {
    fp::Fabric fabric;
    std::vector<double> data = {1, 2, 3, 4, 5, 6};
    auto src = publish(fabric, "in.fp", "a", u::NdShape{3, 2}, {"r", "c"},
                       {SourceStep{data, {{"a.header.1", {"u", "v"}}}},
                        SourceStep{data, {{"a.header.1", {"u", "v"}}}}});
    std::jthread fork([&] {
        run_component(fabric, "fork", 2,
                      {"in.fp", "a", "b1.fp", "x", "b2.fp", "y"});
    });
    std::jthread branch2([&] {
        const Collected out2 = collect(fabric, "b2.fp", "y");
        EXPECT_EQ(out2.steps.size(), 2u);
        EXPECT_EQ(out2.steps.at(0), (std::vector<double>{1, 2, 3, 4, 5, 6}));
        EXPECT_EQ(out2.attrs.at("y.header.1"), (std::vector<std::string>{"u", "v"}));
    });
    const Collected out1 = collect(fabric, "b1.fp", "x");
    EXPECT_EQ(out1.steps.size(), 2u);
    EXPECT_EQ(out1.steps.at(0), (std::vector<double>{1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(out1.labels, (std::vector<std::string>{"r", "c"}));
    EXPECT_EQ(out1.attrs.at("x.header.1"), (std::vector<std::string>{"u", "v"}));
}

TEST(ForkComponent, OddArgsRejected) {
    fp::Fabric fabric;
    EXPECT_THROW(run_component(fabric, "fork", 1, {"in.fp", "a", "b1.fp"}),
                 u::ArgError);
}

// ---- All-Pairs ---------------------------------------------------------------

TEST(AllPairsComponent, PairwiseAbsoluteDifferences) {
    fp::Fabric fabric;
    std::vector<double> data = {1.0, 4.0, 6.0};
    auto src = publish(fabric, "in.fp", "x", u::NdShape{3}, {"pts"},
                       {SourceStep{data, {}}});
    std::jthread ap([&] {
        run_component(fabric, "all-pairs", 2, {"in.fp", "x", "out.fp", "d"});
    });
    const Collected out = collect(fabric, "out.fp", "d");
    EXPECT_EQ(out.shape, (u::NdShape{3, 3}));
    EXPECT_EQ(out.steps.at(0),
              (std::vector<double>{0, 3, 5, 3, 0, 2, 5, 2, 0}));
}

// ---- File endpoints -----------------------------------------------------------

TEST(FileEndpoints, StreamToDiskToStreamRoundTrip) {
    const std::string prefix = ::testing::TempDir() + "/sb_fileio";
    std::filesystem::remove(core::step_file_path(prefix, 0));
    std::filesystem::remove(core::step_file_path(prefix, 1));
    std::filesystem::remove(core::step_file_path(prefix, 2));

    // Phase 1: drain a live stream to disk.
    {
        fp::Fabric fabric;
        std::vector<double> s0 = {1, 2, 3, 4, 5, 6};
        std::vector<double> s1 = {6, 5, 4, 3, 2, 1};
        auto src = publish(fabric, "live.fp", "a", u::NdShape{3, 2}, {"r", "c"},
                           {SourceStep{s0, {{"a.header.1", {"p", "q"}}}},
                            SourceStep{s1, {{"a.header.1", {"p", "q"}}}}});
        run_component(fabric, "file-writer", 2, {"live.fp", "a", prefix});
    }
    EXPECT_TRUE(std::filesystem::exists(core::step_file_path(prefix, 0)));
    EXPECT_TRUE(std::filesystem::exists(core::step_file_path(prefix, 1)));
    EXPECT_FALSE(std::filesystem::exists(core::step_file_path(prefix, 2)));

    // Phase 2: replay from disk later — the decoupling of paper §VI.
    {
        fp::Fabric fabric;
        std::jthread replay([&] {
            run_component(fabric, "file-reader", 2, {prefix, "replay.fp", "b"});
        });
        const Collected out = collect(fabric, "replay.fp", "b");
        ASSERT_EQ(out.steps.size(), 2u);
        EXPECT_EQ(out.shape, (u::NdShape{3, 2}));
        EXPECT_EQ(out.labels, (std::vector<std::string>{"r", "c"}));
        EXPECT_EQ(out.steps[0], (std::vector<double>{1, 2, 3, 4, 5, 6}));
        EXPECT_EQ(out.steps[1], (std::vector<double>{6, 5, 4, 3, 2, 1}));
        EXPECT_EQ(out.attrs.at("a.header.1"), (std::vector<std::string>{"p", "q"}));
    }
}

TEST(FileEndpoints, ReplayOfNothingIsEmptyStream) {
    fp::Fabric fabric;
    std::jthread replay([&] {
        run_component(fabric, "file-reader", 1,
                      {::testing::TempDir() + "/sb_no_files", "e.fp", "x"});
    });
    a::Reader r(fabric, "e.fp", 0, 1);
    EXPECT_FALSE(r.begin_step());
}

// ---- framework helpers ---------------------------------------------------------

TEST(Registry, KnownAndUnknownComponents) {
    EXPECT_TRUE(core::component_registered("select"));
    EXPECT_TRUE(core::component_registered("dim-reduce"));
    EXPECT_FALSE(core::component_registered("nonsense"));
    EXPECT_NO_THROW((void)core::make_component("histogram"));
    try {
        (void)core::make_component("nonsense");
        FAIL();
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("select"), std::string::npos);
    }
    const auto names = core::component_names();
    EXPECT_GE(names.size(), 8u);
}

TEST(ComponentHelpers, PickPartitionDim) {
    EXPECT_EQ(core::pick_partition_dim(u::NdShape{4, 9, 2}, {}), 1u);
    EXPECT_EQ(core::pick_partition_dim(u::NdShape{4, 9, 2}, {1}), 0u);
    // Ties resolve to the lowest dimension index.
    EXPECT_EQ(core::pick_partition_dim(u::NdShape{5, 5}, {}), 0u);
}

TEST(ComponentHelpers, PickPartitionDimAllExcludedThrows) {
    EXPECT_THROW((void)core::pick_partition_dim(u::NdShape{4}, {0}),
                 std::invalid_argument);
}

TEST(ComponentHelpers, HeaderAttrKey) {
    EXPECT_EQ(core::header_attr_key("atoms", 1), "atoms.header.1");
}

TEST(ComponentHelpers, OutputGroupDeduplicatesLabels) {
    const a::GroupDef def =
        core::output_group("t", "arr", {"n", "n", ""}, a::DataKind::Float64);
    const auto& dims = def.find("arr")->dimensions;
    ASSERT_EQ(dims.size(), 3u);
    EXPECT_EQ(dims[0], "n");
    EXPECT_NE(dims[1], "n");   // de-duplicated
    EXPECT_EQ(dims[2], "d2");  // synthesized for the empty label
    // Every dimension name is also a scalar variable of the group.
    for (const auto& d : dims) {
        ASSERT_NE(def.find(d), nullptr);
        EXPECT_TRUE(def.find(d)->is_scalar());
    }
}
