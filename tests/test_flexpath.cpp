// Tests for the FlexPath-like transport: MxN redistribution across writer
// and reader group size combinations, launch-order independence, writer-side
// buffering/backpressure, end-of-stream, metadata self-description, and
// abort propagation.
#include <gtest/gtest.h>

#include <thread>

#include "flexpath/reader.hpp"
#include "flexpath/stream.hpp"
#include "flexpath/writer.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"
#include "util/ndarray.hpp"

namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

/// Value stamped at global coordinates (i, j) of an (n x m) test array.
double stamp(std::uint64_t i, std::uint64_t j) {
    return static_cast<double>(i) * 10000.0 + static_cast<double>(j);
}

/// Runs a writer group and a reader group concurrently over `steps`
/// timesteps of an (n x m) array partitioned arbitrarily on both sides, and
/// verifies every reader sees exactly the stamped values in its box.
void run_mxn(int writers, int readers, std::uint64_t n, std::uint64_t m,
             std::uint64_t steps, std::size_t queue_capacity = 2) {
    fp::Fabric fabric;
    const u::NdShape shape{n, m};

    std::jthread writer_group([&] {
        sb::mpi::run_ranks(writers, [&](sb::mpi::Communicator& c) {
            fp::WriterPort port(fabric, "s", c.rank(), c.size(),
                                fp::StreamOptions{queue_capacity});
            for (std::uint64_t t = 0; t < steps; ++t) {
                fp::VarDecl decl;
                decl.name = "a";
                decl.kind = fp::DataKind::Float64;
                decl.global_shape = shape;
                decl.dim_labels = {"rows", "cols"};
                port.declare(decl);
                // Writers partition along dim 0.
                const u::Box box = u::partition_along(shape, 0, c.rank(), c.size());
                std::vector<double> data(box.volume());
                std::size_t k = 0;
                for (std::uint64_t i = box.offset[0]; i < box.offset[0] + box.count[0];
                     ++i) {
                    for (std::uint64_t j = 0; j < m; ++j) {
                        data[k++] = stamp(i, j) + static_cast<double>(t);
                    }
                }
                port.put<double>("a", box, data);
                port.put_attr("a.header.1", {"c0", "c1"});
                port.end_step();
            }
            port.close();
        });
    });

    sb::mpi::run_ranks(readers, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "s", c.rank(), c.size());
        std::uint64_t t = 0;
        while (port.begin_step()) {
            EXPECT_EQ(port.current_step(), t);
            const fp::VarDecl& decl = port.var("a");
            EXPECT_EQ(decl.global_shape, shape);
            EXPECT_EQ(decl.dim_labels, (std::vector<std::string>{"rows", "cols"}));
            // Readers partition along dim 1 — deliberately mismatched with
            // the writers to exercise the MxN intersection engine.
            const u::Box box = u::partition_along(shape, 1, c.rank(), c.size());
            const std::vector<double> data = port.read<double>("a", box);
            std::size_t k = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                for (std::uint64_t j = box.offset[1]; j < box.offset[1] + box.count[1];
                     ++j) {
                    ASSERT_EQ(data[k++], stamp(i, j) + static_cast<double>(t))
                        << "at (" << i << "," << j << ") step " << t;
                }
            }
            port.end_step();
            ++t;
        }
        EXPECT_EQ(t, steps);
    });
}

}  // namespace

class MxN : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MxN, RedistributesExactly) {
    const auto [w, r] = GetParam();
    run_mxn(w, r, 12, 7, 3);
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, MxN,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 4, 7)));

TEST(Flexpath, ManyStepsThroughSmallQueue) { run_mxn(2, 3, 8, 4, 12, 1); }

TEST(Flexpath, RendezvousQueue) { run_mxn(2, 2, 8, 4, 5, 0); }

TEST(Flexpath, ReaderFirstLaunchOrder) {
    // The reader group starts first and blocks until the writer appears —
    // assembly property 2 of paper §IV.
    fp::Fabric fabric;
    std::atomic<bool> got{false};

    std::jthread reader([&] {
        fp::ReaderPort port(fabric, "late", 0, 1);
        ASSERT_TRUE(port.begin_step());
        EXPECT_EQ(port.read<double>("x", u::Box({0}, {2})),
                  (std::vector<double>{5.0, 6.0}));
        got.store(true);
        port.end_step();
        EXPECT_FALSE(port.begin_step());
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(got.load());  // reader must still be blocked

    fp::WriterPort port(fabric, "late", 0, 1);
    port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{2}, {}});
    const std::vector<double> v = {5.0, 6.0};
    port.put<double>("x", u::Box({0}, {2}), v);
    port.end_step();
    port.close();
}

TEST(Flexpath, WriterRunsAheadUpToQueueCapacity) {
    fp::Fabric fabric;
    auto stream = fabric.get("buffered");
    fp::WriterPort port(fabric, "buffered", 0, 1, fp::StreamOptions{3});
    const std::vector<double> v = {1.0};
    for (int t = 0; t < 3; ++t) {
        port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{1}, {}});
        port.put<double>("x", u::Box({0}, {1}), v);
        port.end_step();  // no reader yet: all three steps buffer
    }
    EXPECT_EQ(stream->queued_steps(), 3u);

    // A fourth step would exceed the buffer: the writer must block until a
    // reader drains one step (backpressure).
    std::atomic<bool> fourth_done{false};
    std::jthread ahead([&] {
        port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{1}, {}});
        port.put<double>("x", u::Box({0}, {1}), v);
        port.end_step();
        fourth_done.store(true);
        port.close();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(fourth_done.load());

    fp::ReaderPort reader(fabric, "buffered", 0, 1);
    for (int t = 0; t < 4; ++t) {
        ASSERT_TRUE(reader.begin_step());
        reader.end_step();
    }
    EXPECT_FALSE(reader.begin_step());
}

TEST(Flexpath, EndOfStreamAfterDraining) {
    fp::Fabric fabric;
    {
        fp::WriterPort port(fabric, "eos", 0, 1);
        const std::vector<double> v = {1.0, 2.0};
        for (int t = 0; t < 2; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{2}, {}});
            port.put<double>("x", u::Box({0}, {2}), v);
            port.end_step();
        }
    }  // destructor closes the writer group
    fp::ReaderPort reader(fabric, "eos", 0, 1);
    EXPECT_TRUE(reader.begin_step());
    reader.end_step();
    EXPECT_TRUE(reader.begin_step());
    reader.end_step();
    EXPECT_FALSE(reader.begin_step());
    EXPECT_FALSE(reader.begin_step());  // stays at end of stream
}

TEST(Flexpath, EmptyStreamDeliversEosOnly) {
    fp::Fabric fabric;
    {
        fp::WriterPort port(fabric, "never", 0, 1);
        port.close();
    }
    fp::ReaderPort reader(fabric, "never", 0, 1);
    EXPECT_FALSE(reader.begin_step());
}

TEST(Flexpath, MultipleVariablesAndAttributesPerStep) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        fp::WriterPort port(fabric, "multi", 0, 1);
        port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{3}, {"i"}});
        port.declare(fp::VarDecl{"n", fp::DataKind::UInt64, u::NdShape{}, {}});
        const std::vector<double> a = {1, 2, 3};
        const std::uint64_t n = 3;
        port.put<double>("a", u::Box({0}, {3}), a);
        port.put<std::uint64_t>("n", u::Box{}, std::span<const std::uint64_t>(&n, 1));
        port.put_attr("a.header.0", {"x", "y", "z"});
        port.put_attr("note", {"hello"});
        port.put_attr("dt", 0.25);
        port.end_step();
        port.close();
    });

    fp::ReaderPort reader(fabric, "multi", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    const fp::StepMeta& meta = reader.meta();
    EXPECT_EQ(meta.vars.size(), 2u);
    EXPECT_EQ(meta.vars.at("a").dim_labels, (std::vector<std::string>{"i"}));
    EXPECT_EQ(meta.string_attrs.at("a.header.0"),
              (std::vector<std::string>{"x", "y", "z"}));
    EXPECT_EQ(meta.string_attrs.at("note"), (std::vector<std::string>{"hello"}));
    EXPECT_DOUBLE_EQ(meta.double_attrs.at("dt"), 0.25);
    EXPECT_EQ(reader.read<std::uint64_t>("n", u::Box{}).at(0), 3u);
    EXPECT_EQ(reader.read<double>("a", u::Box({1}, {2})),
              (std::vector<double>{2.0, 3.0}));
    reader.end_step();
    EXPECT_FALSE(reader.begin_step());
}

TEST(Flexpath, ReadErrors) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        fp::WriterPort port(fabric, "errs", 0, 1);
        port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{4, 4}, {}});
        // Only half the array is written: reads outside must fail coverage.
        std::vector<double> half(8, 1.0);
        port.put<double>("a", u::Box({0, 0}, {2, 4}), half);
        port.end_step();
        port.close();
    });

    fp::ReaderPort reader(fabric, "errs", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    EXPECT_THROW((void)reader.read<double>("missing", u::Box({0}, {1})),
                 std::runtime_error);
    // Wrong selection rank.
    EXPECT_THROW((void)reader.read<double>("a", u::Box({0}, {2})),
                 std::invalid_argument);
    // Out of bounds.
    EXPECT_THROW((void)reader.read<double>("a", u::Box({0, 0}, {5, 4})),
                 std::invalid_argument);
    // Uncovered region.
    EXPECT_THROW((void)reader.read<double>("a", u::Box({0, 0}, {4, 4})),
                 std::runtime_error);
    // Covered region reads fine.
    EXPECT_EQ(reader.read<double>("a", u::Box({1, 0}, {1, 4})),
              std::vector<double>(4, 1.0));
    reader.end_step();
}

TEST(Flexpath, WritersMustAgreeOnDeclarations) {
    fp::Fabric fabric;
    EXPECT_THROW(
        sb::mpi::run_ranks(2,
                           [&](sb::mpi::Communicator& c) {
                               fp::WriterPort port(fabric, "disagree", c.rank(),
                                                   c.size());
                               // Rank-dependent global shape: must be rejected.
                               port.declare(fp::VarDecl{
                                   "a", fp::DataKind::Float64,
                                   u::NdShape{4 + static_cast<std::uint64_t>(c.rank())},
                                   {}});
                               const std::vector<double> v = {1.0};
                               port.put<double>("a", u::Box({0}, {1}), v);
                               port.end_step();
                               port.close();
                           }),
        std::logic_error);
}

TEST(Flexpath, BlockOutsideGlobalShapeRejected) {
    fp::Fabric fabric;
    fp::WriterPort port(fabric, "oob", 0, 1);
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{4}, {}});
    const std::vector<double> v = {1.0, 2.0};
    port.put<double>("a", u::Box({3}, {2}), v);
    EXPECT_THROW(port.end_step(), std::logic_error);
}

TEST(Flexpath, PutSizeValidation) {
    fp::Fabric fabric;
    fp::WriterPort port(fabric, "size", 0, 1);
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{4}, {}});
    const std::vector<double> v = {1.0, 2.0, 3.0};
    EXPECT_THROW(port.put<double>("a", u::Box({0}, {2}), v), std::invalid_argument);
    EXPECT_THROW(port.put<double>("undeclared", u::Box({0}, {3}), v),
                 std::logic_error);
}

TEST(Flexpath, StepMetaWireRoundTrip) {
    fp::StepMeta m;
    m.step = 42;
    m.vars["a"] = fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{3, 4}, {"r", "c"}};
    m.vars["n"] = fp::VarDecl{"n", fp::DataKind::UInt64, u::NdShape{}, {}};
    m.string_attrs["a.header.1"] = {"p", "q", "r", "s"};
    m.double_attrs["dt"] = 0.5;

    const auto wire = fp::encode_step_meta(m);
    const fp::StepMeta back = fp::decode_step_meta(wire);
    EXPECT_EQ(back.step, 42u);
    EXPECT_EQ(back.vars.at("a"), m.vars.at("a"));
    EXPECT_EQ(back.vars.at("n"), m.vars.at("n"));
    EXPECT_EQ(back.string_attrs, m.string_attrs);
    EXPECT_EQ(back.double_attrs, m.double_attrs);
}

TEST(Flexpath, AbortWakesBlockedReader) {
    fp::Fabric fabric;
    auto stream = fabric.get("aborted");
    std::jthread aborter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        fabric.abort_all();
    });
    fp::ReaderPort reader(fabric, "aborted", 0, 1);
    EXPECT_THROW((void)reader.begin_step(), fp::StreamAborted);
}

TEST(Flexpath, AbortFailsSubsequentSubmit) {
    fp::Fabric fabric;
    fp::WriterPort port(fabric, "aborted2", 0, 1);
    fabric.get("aborted2")->abort();
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{1}, {}});
    const std::vector<double> v = {1.0};
    port.put<double>("a", u::Box({0}, {1}), v);
    EXPECT_THROW(port.end_step(), fp::StreamAborted);
}

TEST(Flexpath, FabricRegistryByName) {
    fp::Fabric fabric;
    auto a = fabric.get("one");
    auto b = fabric.get("two");
    auto a2 = fabric.get("one");
    EXPECT_EQ(a.get(), a2.get());
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(fabric.stream_names(), (std::vector<std::string>{"one", "two"}));
}

TEST(Flexpath, GroupSizeDisagreementRejected) {
    fp::Fabric fabric;
    auto s = fabric.get("sz");
    s->attach_writer(2, {});
    EXPECT_THROW(s->attach_writer(3, {}), std::logic_error);
    s->attach_reader(4);
    EXPECT_THROW(s->attach_reader(1), std::logic_error);
    EXPECT_THROW(s->attach_writer(0, {}), std::invalid_argument);
}

// Readers of the same group observe identical step sequences even when they
// proceed at different speeds.
TEST(Flexpath, ReaderGroupLockstep) {
    fp::Fabric fabric;
    constexpr std::uint64_t kSteps = 6;

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "lockstep", 0, 1, fp::StreamOptions{1});
        for (std::uint64_t t = 0; t < kSteps; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{4}, {}});
            std::vector<double> v(4, static_cast<double>(t));
            port.put<double>("x", u::Box({0}, {4}), v);
            port.end_step();
        }
        port.close();
    });

    sb::mpi::run_ranks(3, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "lockstep", c.rank(), c.size());
        std::uint64_t expected = 0;
        while (port.begin_step()) {
            EXPECT_EQ(port.current_step(), expected);
            // Stagger the ranks to stress the acquire/release protocol.
            if (c.rank() == 1) {
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            const auto v = port.read<double>(
                "x", u::partition_along(u::NdShape{4}, 0, c.rank(), c.size()));
            for (double x : v) EXPECT_EQ(x, static_cast<double>(expected));
            port.end_step();
            ++expected;
        }
        EXPECT_EQ(expected, kSteps);
    });
}

// ---- redistribution fast path --------------------------------------------

namespace {

double counter_total(const std::string& name) {
    return sb::obs::Registry::global().total(name);
}

/// Writes one step of an (8 x 8) array as `writers` row-slabs.
void put_row_slabs(fp::WriterPort& port, const u::NdShape& shape, int writers,
                   double base) {
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
    for (int w = 0; w < writers; ++w) {
        const u::Box b = u::partition_along(shape, 0, w, writers);
        std::vector<double> data(b.volume());
        for (std::size_t k = 0; k < data.size(); ++k) {
            // Stamp by global coordinate, so values are layout-independent.
            const std::uint64_t i = b.offset[0] + k / shape[1];
            const std::uint64_t j = k % shape[1];
            data[k] = base + static_cast<double>(i) * 1000.0 +
                      static_cast<double>(j);
        }
        port.put<double>("a", b, data);
    }
    port.end_step();
}

}  // namespace

// Plans compiled on the first step replay on later steps of the same writer
// layout, and are recompiled — with correct results — when the writer
// repartitions mid-stream.
TEST(Flexpath, PlanCacheInvalidatedOnRepartition) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 8};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "plans", 0, 1, fp::StreamOptions{4});
        // Two steps as 2 row-slabs, then two steps as 4 — a layout change.
        put_row_slabs(port, shape, 2, 0.0);
        put_row_slabs(port, shape, 2, 1.0);
        put_row_slabs(port, shape, 4, 2.0);
        put_row_slabs(port, shape, 4, 3.0);
        port.close();
    });

    const double hits0 = counter_total("flexpath.plan_hits");
    const double misses0 = counter_total("flexpath.plan_misses");

    fp::ReaderPort reader(fabric, "plans", 0, 1);
    const u::Box box({1, 2}, {6, 4});  // cuts across every writer block
    std::vector<std::vector<double>> seen;
    while (reader.begin_step()) {
        seen.push_back(reader.read<double>("a", box));
        reader.end_step();
    }
    ASSERT_EQ(seen.size(), 4u);
    // Steps of one layout agree modulo the per-step base stamp; the reads
    // across the layout change agree the same way — the recompiled plan
    // assembled the identical region.
    for (std::size_t s = 1; s < 4; ++s) {
        ASSERT_EQ(seen[s].size(), seen[0].size());
        for (std::size_t k = 0; k < seen[0].size(); ++k) {
            EXPECT_EQ(seen[s][k] - seen[0][k], static_cast<double>(s))
                << "step " << s << " element " << k;
        }
    }
    // Steps 0 and 2 compiled (first touch, then the repartition); 1 and 3 hit.
    EXPECT_EQ(counter_total("flexpath.plan_misses") - misses0, 2.0);
    EXPECT_EQ(counter_total("flexpath.plan_hits") - hits0, 2.0);
}

// A box that coincides exactly with one writer block reads zero-copy; any
// other box declines the view and the copying read still works.
TEST(Flexpath, ZeroCopyViewOnAlignedBox) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 8};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "views", 0, 1, fp::StreamOptions{2});
        put_row_slabs(port, shape, 2, 0.0);
        port.close();
    });

    const double zc0 = counter_total("flexpath.zero_copy_reads");
    fp::ReaderPort reader(fabric, "views", 0, 1);
    ASSERT_TRUE(reader.begin_step());

    const u::Box block0 = u::partition_along(shape, 0, 0, 2);
    const auto view = reader.try_read_view<double>("a", block0);
    ASSERT_TRUE(view.has_value());
    ASSERT_EQ(view->size(), block0.volume());
    EXPECT_EQ(counter_total("flexpath.zero_copy_reads") - zc0, 1.0);

    // The view matches a copying read of the same box...
    const auto copied = reader.read<double>("a", block0);
    for (std::size_t k = 0; k < copied.size(); ++k) {
        EXPECT_EQ((*view)[k], copied[k]);
    }
    // ...and stays valid (same bytes, same address) after further reads of
    // other boxes — it is pinned by the step, not by the last read call.
    const double first = (*view)[0];
    const auto other = reader.read<double>("a", u::Box({0, 0}, {8, 8}));
    EXPECT_EQ((*view)[0], first);
    EXPECT_EQ(other[0], first);

    // Misaligned boxes decline the view.
    EXPECT_FALSE(reader.try_read_view<double>("a", u::Box({0, 0}, {3, 8})));
    EXPECT_FALSE(reader.try_read_view<double>("a", u::Box({0, 0}, {8, 8})));
    // Element-size mismatch throws rather than reinterpreting.
    EXPECT_THROW(reader.try_read_view<float>("a", block0), std::runtime_error);

    reader.end_step();
}

// The step's FFS metadata packet is decoded once and shared: every reader
// rank of a step sees the same StepMeta instance.
TEST(Flexpath, StepMetaDecodedOncePerStep) {
    fp::Fabric fabric;
    const u::NdShape shape{4, 4};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "shared-meta", 0, 1, fp::StreamOptions{2});
        put_row_slabs(port, shape, 1, 0.0);
        port.close();
    });

    fp::ReaderPort a(fabric, "shared-meta", 0, 2);
    fp::ReaderPort b(fabric, "shared-meta", 1, 2);
    ASSERT_TRUE(a.begin_step());
    ASSERT_TRUE(b.begin_step());
    EXPECT_EQ(&a.meta(), &b.meta());
    a.end_step();
    b.end_step();
}

// SB_PLAN_CACHE=off (mirrored by set_plan_cache_enabled) keeps reads
// correct while recompiling every time — the bench's A/B baseline.
TEST(Flexpath, PlanCacheDisabledStillCorrect) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 8};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "nocache", 0, 1, fp::StreamOptions{2});
        put_row_slabs(port, shape, 2, 0.0);
        put_row_slabs(port, shape, 2, 1.0);
        port.close();
    });

    const double hits0 = counter_total("flexpath.plan_hits");
    fp::ReaderPort reader(fabric, "nocache", 0, 1);
    reader.set_plan_cache_enabled(false);
    const u::Box box({1, 1}, {6, 6});
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        const auto data = reader.read<double>("a", box);
        EXPECT_EQ(data.size(), box.volume());
        for (std::size_t k = 0; k < data.size(); ++k) {
            EXPECT_GE(data[k], static_cast<double>(t));
        }
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 2u);
    EXPECT_EQ(counter_total("flexpath.plan_hits") - hits0, 0.0);
}
