// Tests for the FlexPath-like transport: MxN redistribution across writer
// and reader group size combinations, launch-order independence, writer-side
// buffering/backpressure, end-of-stream, metadata self-description, and
// abort propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "fault/fault.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/stream.hpp"
#include "flexpath/writer.hpp"
#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"
#include "util/ndarray.hpp"
#include "util/pool.hpp"

namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

/// Value stamped at global coordinates (i, j) of an (n x m) test array.
double stamp(std::uint64_t i, std::uint64_t j) {
    return static_cast<double>(i) * 10000.0 + static_cast<double>(j);
}

/// Runs a writer group and a reader group concurrently over `steps`
/// timesteps of an (n x m) array partitioned arbitrarily on both sides, and
/// verifies every reader sees exactly the stamped values in its box.
void run_mxn(int writers, int readers, std::uint64_t n, std::uint64_t m,
             std::uint64_t steps, std::size_t queue_capacity = 2) {
    fp::Fabric fabric;
    const u::NdShape shape{n, m};

    std::jthread writer_group([&] {
        sb::mpi::run_ranks(writers, [&](sb::mpi::Communicator& c) {
            fp::WriterPort port(fabric, "s", c.rank(), c.size(),
                                fp::StreamOptions{queue_capacity});
            for (std::uint64_t t = 0; t < steps; ++t) {
                fp::VarDecl decl;
                decl.name = "a";
                decl.kind = fp::DataKind::Float64;
                decl.global_shape = shape;
                decl.dim_labels = {"rows", "cols"};
                port.declare(decl);
                // Writers partition along dim 0.
                const u::Box box = u::partition_along(shape, 0, c.rank(), c.size());
                std::vector<double> data(box.volume());
                std::size_t k = 0;
                for (std::uint64_t i = box.offset[0]; i < box.offset[0] + box.count[0];
                     ++i) {
                    for (std::uint64_t j = 0; j < m; ++j) {
                        data[k++] = stamp(i, j) + static_cast<double>(t);
                    }
                }
                port.put<double>("a", box, data);
                port.put_attr("a.header.1", {"c0", "c1"});
                port.end_step();
            }
            port.close();
        });
    });

    sb::mpi::run_ranks(readers, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "s", c.rank(), c.size());
        std::uint64_t t = 0;
        while (port.begin_step()) {
            EXPECT_EQ(port.current_step(), t);
            const fp::VarDecl& decl = port.var("a");
            EXPECT_EQ(decl.global_shape, shape);
            EXPECT_EQ(decl.dim_labels, (std::vector<std::string>{"rows", "cols"}));
            // Readers partition along dim 1 — deliberately mismatched with
            // the writers to exercise the MxN intersection engine.
            const u::Box box = u::partition_along(shape, 1, c.rank(), c.size());
            const std::vector<double> data = port.read<double>("a", box);
            std::size_t k = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                for (std::uint64_t j = box.offset[1]; j < box.offset[1] + box.count[1];
                     ++j) {
                    ASSERT_EQ(data[k++], stamp(i, j) + static_cast<double>(t))
                        << "at (" << i << "," << j << ") step " << t;
                }
            }
            port.end_step();
            ++t;
        }
        EXPECT_EQ(t, steps);
    });
}

}  // namespace

class MxN : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MxN, RedistributesExactly) {
    const auto [w, r] = GetParam();
    run_mxn(w, r, 12, 7, 3);
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, MxN,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 4, 7)));

TEST(Flexpath, ManyStepsThroughSmallQueue) { run_mxn(2, 3, 8, 4, 12, 1); }

TEST(Flexpath, RendezvousQueue) { run_mxn(2, 2, 8, 4, 5, 0); }

TEST(Flexpath, ReaderFirstLaunchOrder) {
    // The reader group starts first and blocks until the writer appears —
    // assembly property 2 of paper §IV.
    fp::Fabric fabric;
    std::atomic<bool> got{false};

    std::jthread reader([&] {
        fp::ReaderPort port(fabric, "late", 0, 1);
        ASSERT_TRUE(port.begin_step());
        EXPECT_EQ(port.read<double>("x", u::Box({0}, {2})),
                  (std::vector<double>{5.0, 6.0}));
        got.store(true);
        port.end_step();
        EXPECT_FALSE(port.begin_step());
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(got.load());  // reader must still be blocked

    fp::WriterPort port(fabric, "late", 0, 1);
    port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{2}, {}});
    const std::vector<double> v = {5.0, 6.0};
    port.put<double>("x", u::Box({0}, {2}), v);
    port.end_step();
    port.close();
}

TEST(Flexpath, WriterRunsAheadUpToQueueCapacity) {
    fp::Fabric fabric;
    auto stream = fabric.get("buffered");
    fp::WriterPort port(fabric, "buffered", 0, 1, fp::StreamOptions{3});
    const std::vector<double> v = {1.0};
    for (int t = 0; t < 3; ++t) {
        port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{1}, {}});
        port.put<double>("x", u::Box({0}, {1}), v);
        port.end_step();  // no reader yet: all three steps buffer
    }
    EXPECT_EQ(stream->queued_steps(), 3u);

    // A fourth step would exceed the buffer: the writer must block until a
    // reader drains one step (backpressure).
    std::atomic<bool> fourth_done{false};
    std::jthread ahead([&] {
        port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{1}, {}});
        port.put<double>("x", u::Box({0}, {1}), v);
        port.end_step();
        fourth_done.store(true);
        port.close();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(fourth_done.load());

    fp::ReaderPort reader(fabric, "buffered", 0, 1);
    for (int t = 0; t < 4; ++t) {
        ASSERT_TRUE(reader.begin_step());
        reader.end_step();
    }
    EXPECT_FALSE(reader.begin_step());
}

TEST(Flexpath, EndOfStreamAfterDraining) {
    fp::Fabric fabric;
    {
        fp::WriterPort port(fabric, "eos", 0, 1);
        const std::vector<double> v = {1.0, 2.0};
        for (int t = 0; t < 2; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{2}, {}});
            port.put<double>("x", u::Box({0}, {2}), v);
            port.end_step();
        }
    }  // destructor closes the writer group
    fp::ReaderPort reader(fabric, "eos", 0, 1);
    EXPECT_TRUE(reader.begin_step());
    reader.end_step();
    EXPECT_TRUE(reader.begin_step());
    reader.end_step();
    EXPECT_FALSE(reader.begin_step());
    EXPECT_FALSE(reader.begin_step());  // stays at end of stream
}

TEST(Flexpath, EmptyStreamDeliversEosOnly) {
    fp::Fabric fabric;
    {
        fp::WriterPort port(fabric, "never", 0, 1);
        port.close();
    }
    fp::ReaderPort reader(fabric, "never", 0, 1);
    EXPECT_FALSE(reader.begin_step());
}

TEST(Flexpath, MultipleVariablesAndAttributesPerStep) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        fp::WriterPort port(fabric, "multi", 0, 1);
        port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{3}, {"i"}});
        port.declare(fp::VarDecl{"n", fp::DataKind::UInt64, u::NdShape{}, {}});
        const std::vector<double> a = {1, 2, 3};
        const std::uint64_t n = 3;
        port.put<double>("a", u::Box({0}, {3}), a);
        port.put<std::uint64_t>("n", u::Box{}, std::span<const std::uint64_t>(&n, 1));
        port.put_attr("a.header.0", {"x", "y", "z"});
        port.put_attr("note", {"hello"});
        port.put_attr("dt", 0.25);
        port.end_step();
        port.close();
    });

    fp::ReaderPort reader(fabric, "multi", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    const fp::StepMeta& meta = reader.meta();
    EXPECT_EQ(meta.vars.size(), 2u);
    EXPECT_EQ(meta.vars.at("a").dim_labels, (std::vector<std::string>{"i"}));
    EXPECT_EQ(meta.string_attrs.at("a.header.0"),
              (std::vector<std::string>{"x", "y", "z"}));
    EXPECT_EQ(meta.string_attrs.at("note"), (std::vector<std::string>{"hello"}));
    EXPECT_DOUBLE_EQ(meta.double_attrs.at("dt"), 0.25);
    EXPECT_EQ(reader.read<std::uint64_t>("n", u::Box{}).at(0), 3u);
    EXPECT_EQ(reader.read<double>("a", u::Box({1}, {2})),
              (std::vector<double>{2.0, 3.0}));
    reader.end_step();
    EXPECT_FALSE(reader.begin_step());
}

TEST(Flexpath, ReadErrors) {
    fp::Fabric fabric;
    std::jthread writer([&] {
        fp::WriterPort port(fabric, "errs", 0, 1);
        port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{4, 4}, {}});
        // Only half the array is written: reads outside must fail coverage.
        std::vector<double> half(8, 1.0);
        port.put<double>("a", u::Box({0, 0}, {2, 4}), half);
        port.end_step();
        port.close();
    });

    fp::ReaderPort reader(fabric, "errs", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    EXPECT_THROW((void)reader.read<double>("missing", u::Box({0}, {1})),
                 std::runtime_error);
    // Wrong selection rank.
    EXPECT_THROW((void)reader.read<double>("a", u::Box({0}, {2})),
                 std::invalid_argument);
    // Out of bounds.
    EXPECT_THROW((void)reader.read<double>("a", u::Box({0, 0}, {5, 4})),
                 std::invalid_argument);
    // Uncovered region.
    EXPECT_THROW((void)reader.read<double>("a", u::Box({0, 0}, {4, 4})),
                 std::runtime_error);
    // Covered region reads fine.
    EXPECT_EQ(reader.read<double>("a", u::Box({1, 0}, {1, 4})),
              std::vector<double>(4, 1.0));
    reader.end_step();
}

TEST(Flexpath, WritersMustAgreeOnDeclarations) {
    fp::Fabric fabric;
    EXPECT_THROW(
        sb::mpi::run_ranks(2,
                           [&](sb::mpi::Communicator& c) {
                               fp::WriterPort port(fabric, "disagree", c.rank(),
                                                   c.size());
                               // Rank-dependent global shape: must be rejected.
                               port.declare(fp::VarDecl{
                                   "a", fp::DataKind::Float64,
                                   u::NdShape{4 + static_cast<std::uint64_t>(c.rank())},
                                   {}});
                               const std::vector<double> v = {1.0};
                               port.put<double>("a", u::Box({0}, {1}), v);
                               port.end_step();
                               port.close();
                           }),
        std::logic_error);
}

TEST(Flexpath, BlockOutsideGlobalShapeRejected) {
    fp::Fabric fabric;
    fp::WriterPort port(fabric, "oob", 0, 1);
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{4}, {}});
    const std::vector<double> v = {1.0, 2.0};
    port.put<double>("a", u::Box({3}, {2}), v);
    EXPECT_THROW(port.end_step(), std::logic_error);
}

TEST(Flexpath, PutSizeValidation) {
    fp::Fabric fabric;
    fp::WriterPort port(fabric, "size", 0, 1);
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{4}, {}});
    const std::vector<double> v = {1.0, 2.0, 3.0};
    EXPECT_THROW(port.put<double>("a", u::Box({0}, {2}), v), std::invalid_argument);
    EXPECT_THROW(port.put<double>("undeclared", u::Box({0}, {3}), v),
                 std::logic_error);
}

TEST(Flexpath, StepMetaWireRoundTrip) {
    fp::StepMeta m;
    m.step = 42;
    m.vars["a"] = fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{3, 4}, {"r", "c"}};
    m.vars["n"] = fp::VarDecl{"n", fp::DataKind::UInt64, u::NdShape{}, {}};
    m.string_attrs["a.header.1"] = {"p", "q", "r", "s"};
    m.double_attrs["dt"] = 0.5;

    const auto wire = fp::encode_step_meta(m);
    const fp::StepMeta back = fp::decode_step_meta(wire);
    EXPECT_EQ(back.step, 42u);
    EXPECT_EQ(back.vars.at("a"), m.vars.at("a"));
    EXPECT_EQ(back.vars.at("n"), m.vars.at("n"));
    EXPECT_EQ(back.string_attrs, m.string_attrs);
    EXPECT_EQ(back.double_attrs, m.double_attrs);
}

TEST(Flexpath, AbortWakesBlockedReader) {
    fp::Fabric fabric;
    auto stream = fabric.get("aborted");
    std::jthread aborter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        fabric.abort_all();
    });
    fp::ReaderPort reader(fabric, "aborted", 0, 1);
    EXPECT_THROW((void)reader.begin_step(), fp::StreamAborted);
}

TEST(Flexpath, AbortFailsSubsequentSubmit) {
    fp::Fabric fabric;
    fp::WriterPort port(fabric, "aborted2", 0, 1);
    fabric.get("aborted2")->abort();
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{1}, {}});
    const std::vector<double> v = {1.0};
    port.put<double>("a", u::Box({0}, {1}), v);
    EXPECT_THROW(port.end_step(), fp::StreamAborted);
}

TEST(Flexpath, FabricRegistryByName) {
    fp::Fabric fabric;
    auto a = fabric.get("one");
    auto b = fabric.get("two");
    auto a2 = fabric.get("one");
    EXPECT_EQ(a.get(), a2.get());
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(fabric.stream_names(), (std::vector<std::string>{"one", "two"}));
}

TEST(Flexpath, GroupSizeDisagreementRejected) {
    fp::Fabric fabric;
    auto s = fabric.get("sz");
    s->attach_writer(2, {});
    EXPECT_THROW(s->attach_writer(3, {}), std::logic_error);
    s->attach_reader(4);
    EXPECT_THROW(s->attach_reader(1), std::logic_error);
    EXPECT_THROW(s->attach_writer(0, {}), std::invalid_argument);
}

// Readers of the same group observe identical step sequences even when they
// proceed at different speeds.
TEST(Flexpath, ReaderGroupLockstep) {
    fp::Fabric fabric;
    constexpr std::uint64_t kSteps = 6;

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "lockstep", 0, 1, fp::StreamOptions{1});
        for (std::uint64_t t = 0; t < kSteps; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{4}, {}});
            std::vector<double> v(4, static_cast<double>(t));
            port.put<double>("x", u::Box({0}, {4}), v);
            port.end_step();
        }
        port.close();
    });

    sb::mpi::run_ranks(3, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "lockstep", c.rank(), c.size());
        std::uint64_t expected = 0;
        while (port.begin_step()) {
            EXPECT_EQ(port.current_step(), expected);
            // Stagger the ranks to stress the acquire/release protocol.
            if (c.rank() == 1) {
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            const auto v = port.read<double>(
                "x", u::partition_along(u::NdShape{4}, 0, c.rank(), c.size()));
            for (double x : v) EXPECT_EQ(x, static_cast<double>(expected));
            port.end_step();
            ++expected;
        }
        EXPECT_EQ(expected, kSteps);
    });
}

// ---- redistribution fast path --------------------------------------------

namespace {

double counter_total(const std::string& name) {
    return sb::obs::Registry::global().total(name);
}

/// Writes one step of an (8 x 8) array as `writers` row-slabs.
void put_row_slabs(fp::WriterPort& port, const u::NdShape& shape, int writers,
                   double base) {
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
    for (int w = 0; w < writers; ++w) {
        const u::Box b = u::partition_along(shape, 0, w, writers);
        std::vector<double> data(b.volume());
        for (std::size_t k = 0; k < data.size(); ++k) {
            // Stamp by global coordinate, so values are layout-independent.
            const std::uint64_t i = b.offset[0] + k / shape[1];
            const std::uint64_t j = k % shape[1];
            data[k] = base + static_cast<double>(i) * 1000.0 +
                      static_cast<double>(j);
        }
        port.put<double>("a", b, data);
    }
    port.end_step();
}

}  // namespace

// Plans compiled on the first step replay on later steps of the same writer
// layout, and are recompiled — with correct results — when the writer
// repartitions mid-stream.
TEST(Flexpath, PlanCacheInvalidatedOnRepartition) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 8};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "plans", 0, 1, fp::StreamOptions{4});
        // Two steps as 2 row-slabs, then two steps as 4 — a layout change.
        put_row_slabs(port, shape, 2, 0.0);
        put_row_slabs(port, shape, 2, 1.0);
        put_row_slabs(port, shape, 4, 2.0);
        put_row_slabs(port, shape, 4, 3.0);
        port.close();
    });

    const double hits0 = counter_total("flexpath.plan_hits");
    const double misses0 = counter_total("flexpath.plan_misses");

    fp::ReaderPort reader(fabric, "plans", 0, 1);
    const u::Box box({1, 2}, {6, 4});  // cuts across every writer block
    std::vector<std::vector<double>> seen;
    while (reader.begin_step()) {
        seen.push_back(reader.read<double>("a", box));
        reader.end_step();
    }
    ASSERT_EQ(seen.size(), 4u);
    // Steps of one layout agree modulo the per-step base stamp; the reads
    // across the layout change agree the same way — the recompiled plan
    // assembled the identical region.
    for (std::size_t s = 1; s < 4; ++s) {
        ASSERT_EQ(seen[s].size(), seen[0].size());
        for (std::size_t k = 0; k < seen[0].size(); ++k) {
            EXPECT_EQ(seen[s][k] - seen[0][k], static_cast<double>(s))
                << "step " << s << " element " << k;
        }
    }
    // Steps 0 and 2 compiled (first touch, then the repartition); 1 and 3 hit.
    EXPECT_EQ(counter_total("flexpath.plan_misses") - misses0, 2.0);
    EXPECT_EQ(counter_total("flexpath.plan_hits") - hits0, 2.0);
}

// A box that coincides exactly with one writer block reads zero-copy; any
// other box declines the view and the copying read still works.
TEST(Flexpath, ZeroCopyViewOnAlignedBox) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 8};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "views", 0, 1, fp::StreamOptions{2});
        put_row_slabs(port, shape, 2, 0.0);
        port.close();
    });

    const double zc0 = counter_total("flexpath.zero_copy_reads");
    fp::ReaderPort reader(fabric, "views", 0, 1);
    ASSERT_TRUE(reader.begin_step());

    const u::Box block0 = u::partition_along(shape, 0, 0, 2);
    const auto view = reader.try_read_view<double>("a", block0);
    ASSERT_TRUE(view.has_value());
    ASSERT_EQ(view->size(), block0.volume());
    EXPECT_EQ(counter_total("flexpath.zero_copy_reads") - zc0, 1.0);

    // The view matches a copying read of the same box...
    const auto copied = reader.read<double>("a", block0);
    for (std::size_t k = 0; k < copied.size(); ++k) {
        EXPECT_EQ((*view)[k], copied[k]);
    }
    // ...and stays valid (same bytes, same address) after further reads of
    // other boxes — it is pinned by the step, not by the last read call.
    const double first = (*view)[0];
    const auto other = reader.read<double>("a", u::Box({0, 0}, {8, 8}));
    EXPECT_EQ((*view)[0], first);
    EXPECT_EQ(other[0], first);

    // Misaligned boxes decline the view.
    EXPECT_FALSE(reader.try_read_view<double>("a", u::Box({0, 0}, {3, 8})));
    EXPECT_FALSE(reader.try_read_view<double>("a", u::Box({0, 0}, {8, 8})));
    // Element-size mismatch throws rather than reinterpreting.
    EXPECT_THROW(reader.try_read_view<float>("a", block0), std::runtime_error);

    reader.end_step();
}

// The step's FFS metadata packet is decoded once and shared: every reader
// rank of a step sees the same StepMeta instance.
TEST(Flexpath, StepMetaDecodedOncePerStep) {
    fp::Fabric fabric;
    const u::NdShape shape{4, 4};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "shared-meta", 0, 1, fp::StreamOptions{2});
        put_row_slabs(port, shape, 1, 0.0);
        port.close();
    });

    fp::ReaderPort a(fabric, "shared-meta", 0, 2);
    fp::ReaderPort b(fabric, "shared-meta", 1, 2);
    ASSERT_TRUE(a.begin_step());
    ASSERT_TRUE(b.begin_step());
    EXPECT_EQ(&a.meta(), &b.meta());
    a.end_step();
    b.end_step();
}

// SB_PLAN_CACHE=off (mirrored by set_plan_cache_enabled) keeps reads
// correct while recompiling every time — the bench's A/B baseline.
TEST(Flexpath, PlanCacheDisabledStillCorrect) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 8};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "nocache", 0, 1, fp::StreamOptions{2});
        put_row_slabs(port, shape, 2, 0.0);
        put_row_slabs(port, shape, 2, 1.0);
        port.close();
    });

    const double hits0 = counter_total("flexpath.plan_hits");
    fp::ReaderPort reader(fabric, "nocache", 0, 1);
    reader.set_plan_cache_enabled(false);
    const u::Box box({1, 1}, {6, 6});
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        const auto data = reader.read<double>("a", box);
        EXPECT_EQ(data.size(), box.volume());
        for (std::size_t k = 0; k < data.size(); ++k) {
            EXPECT_GE(data[k], static_cast<double>(t));
        }
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 2u);
    EXPECT_EQ(counter_total("flexpath.plan_hits") - hits0, 0.0);
}

// ---- reader-side step pipelining ------------------------------------------

namespace {

/// Restores an environment variable to its prior state on scope exit.
class EnvVarGuard {
public:
    explicit EnvVarGuard(const char* name) : name_(name) {
        if (const char* v = std::getenv(name)) saved_ = v;
    }
    ~EnvVarGuard() {
        if (saved_) {
            ::setenv(name_, saved_->c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    EnvVarGuard(const EnvVarGuard&) = delete;
    EnvVarGuard& operator=(const EnvVarGuard&) = delete;

private:
    const char* name_;
    std::optional<std::string> saved_;
};

/// Single-rank writer: `steps` steps of a 4-element var "x" valued t, then
/// close.
void write_simple_steps(fp::Fabric& fabric, const std::string& stream,
                        std::uint64_t steps, const fp::StreamOptions& opts) {
    fp::WriterPort port(fabric, stream, 0, 1, opts);
    for (std::uint64_t t = 0; t < steps; ++t) {
        port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{4}, {}});
        const std::vector<double> v(4, static_cast<double>(t));
        port.put<double>("x", u::Box({0}, {4}), v);
        port.end_step();
    }
    port.close();
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

}  // namespace

TEST(Pipeline, ReadAheadResolution) {
    const EnvVarGuard guard("SB_READ_AHEAD");
    fp::StreamOptions opts;
    ::unsetenv("SB_READ_AHEAD");
    EXPECT_EQ(fp::resolve_read_ahead(opts), 2u);
    ::setenv("SB_READ_AHEAD", "off", 1);
    EXPECT_EQ(fp::resolve_read_ahead(opts), 1u);
    ::setenv("SB_READ_AHEAD", "0", 1);
    EXPECT_EQ(fp::resolve_read_ahead(opts), 1u);
    ::setenv("SB_READ_AHEAD", "false", 1);
    EXPECT_EQ(fp::resolve_read_ahead(opts), 1u);
    ::setenv("SB_READ_AHEAD", "4", 1);
    EXPECT_EQ(fp::resolve_read_ahead(opts), 4u);
    ::setenv("SB_READ_AHEAD", "banana", 1);
    EXPECT_EQ(fp::resolve_read_ahead(opts), 2u);
    // An explicit option always wins over the environment, so tests that
    // pin a window keep their semantics under the SB_READ_AHEAD=off CI leg.
    opts.read_ahead = 3;
    ::setenv("SB_READ_AHEAD", "off", 1);
    EXPECT_EQ(fp::resolve_read_ahead(opts), 3u);
}

TEST(Pipeline, StreamReportsResolvedWindow) {
    fp::Fabric fabric;
    auto s = fabric.get("window-depth");
    EXPECT_EQ(s->read_ahead(), 0u);  // unresolved until a writer attaches
    fp::StreamOptions opts(4);
    opts.read_ahead = 3;
    s->attach_writer(1, opts);
    EXPECT_EQ(s->read_ahead(), 3u);
    EXPECT_EQ(s->in_flight_steps(), 0u);
}

// A fast reader rank advances into step N+1 while a slow peer still holds
// step N — the point of the window.  The handshake is deterministic: rank 1
// refuses to finish step 0 until rank 0 proves it is inside step 1.
TEST(Pipeline, FastRankRunsAheadWithinWindow) {
    fp::Fabric fabric;
    constexpr std::uint64_t kSteps = 4;
    fp::StreamOptions opts(8);
    opts.read_ahead = 2;

    std::jthread writer([&] { write_simple_steps(fabric, "skew", kSteps, opts); });

    std::atomic<bool> rank0_inside_step1{false};
    sb::mpi::run_ranks(2, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "skew", c.rank(), c.size());
        std::uint64_t t = 0;
        while (port.begin_step()) {
            EXPECT_EQ(port.current_step(), t);
            if (c.rank() == 0 && t == 1) {
                // Rank 1 still holds step 0 (it is spinning on the flag set
                // below), and this rank holds step 1: two steps in flight.
                EXPECT_EQ(fabric.get("skew")->in_flight_steps(), 2u);
                rank0_inside_step1.store(true, std::memory_order_release);
            }
            if (c.rank() == 1 && t == 0) {
                EXPECT_TRUE(wait_until(
                    [&] {
                        return rank0_inside_step1.load(std::memory_order_acquire);
                    },
                    std::chrono::seconds(10)))
                    << "rank 0 never reached step 1 while rank 1 held step 0";
            }
            const auto v = port.read<double>("x", u::Box({0}, {4}));
            for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
            port.end_step();
            ++t;
        }
        EXPECT_EQ(t, kSteps);
    });

    auto& reg = sb::obs::Registry::global();
    EXPECT_GE(reg.gauge("flexpath.read_ahead_depth", {{"stream", "skew"}})
                  .high_water(),
              2.0);
    EXPECT_GT(reg.histogram("flexpath.prefetch_wait_seconds", {{"stream", "skew"}})
                  .count(),
              0u);
}

// With the window pinned to 1 the seed's lockstep protocol is reproduced:
// no rank enters step N+1 until every rank has released step N.
TEST(Pipeline, ReadAheadOneForcesLockstep) {
    fp::Fabric fabric;
    constexpr std::uint64_t kSteps = 3;
    fp::StreamOptions opts(8);
    opts.read_ahead = 1;

    std::jthread writer([&] { write_simple_steps(fabric, "lock1", kSteps, opts); });

    std::atomic<bool> rank0_entered_step1{false};
    sb::mpi::run_ranks(2, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "lock1", c.rank(), c.size());
        std::uint64_t t = 0;
        while (port.begin_step()) {
            if (c.rank() == 0 && t == 1) {
                rank0_entered_step1.store(true, std::memory_order_release);
            }
            if (c.rank() == 1 && t == 0) {
                EXPECT_EQ(fabric.get("lock1")->read_ahead(), 1u);
                // Give rank 0 ample opportunity to (incorrectly) run ahead.
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
                EXPECT_FALSE(rank0_entered_step1.load(std::memory_order_acquire))
                    << "rank 0 entered step 1 while rank 1 still held step 0";
                EXPECT_LE(fabric.get("lock1")->in_flight_steps(), 1u);
            }
            const auto v = port.read<double>("x", u::Box({0}, {4}));
            for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
            port.end_step();
            ++t;
        }
        EXPECT_EQ(t, kSteps);
    });
}

// The full ctest suite also runs under SB_READ_AHEAD=off in CI; this keeps
// a direct in-suite check that the env gate preserves MxN correctness.
TEST(Pipeline, EnvOffReproducesSeedSemantics) {
    const EnvVarGuard guard("SB_READ_AHEAD");
    ::setenv("SB_READ_AHEAD", "off", 1);
    run_mxn(2, 3, 8, 4, 6, 2);
}

TEST(Pipeline, EosAfterDrainingDeepWindow) {
    fp::Fabric fabric;
    fp::StreamOptions opts(8);
    opts.read_ahead = 4;
    write_simple_steps(fabric, "deep-eos", 3, opts);

    fp::ReaderPort reader(fabric, "deep-eos", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 3u);
    EXPECT_FALSE(reader.begin_step());  // stays at end of stream
}

// Tearing a stream down while the prefetcher has staged steps the reader
// never consumed must join the prefetcher cleanly (no hang; the ASan/TSan
// legs verify no leak/race).
TEST(Pipeline, TeardownWithPartiallyConsumedWindow) {
    fp::Fabric fabric;
    fp::StreamOptions opts(8);
    opts.read_ahead = 4;
    write_simple_steps(fabric, "partial", 3, opts);

    auto stream = fabric.get("partial");
    fp::ReaderPort reader(fabric, "partial", 0, 1);
    ASSERT_TRUE(reader.begin_step());  // consume step 0 only
    reader.end_step();
    // The prefetcher stages the remaining steps behind our back.
    EXPECT_TRUE(wait_until([&] { return stream->in_flight_steps() == 2; },
                           std::chrono::seconds(10)));
    // Scope exit destroys the port, fabric, and stream with steps 1..2
    // still in flight.
}

TEST(Pipeline, AbortWithPartiallyConsumedWindow) {
    fp::Fabric fabric;
    fp::StreamOptions opts(8);
    opts.read_ahead = 3;
    write_simple_steps(fabric, "abort-win", 3, opts);

    auto stream = fabric.get("abort-win");
    fp::ReaderPort reader(fabric, "abort-win", 0, 1);
    ASSERT_TRUE(reader.begin_step());  // hold step 0
    EXPECT_TRUE(wait_until([&] { return stream->in_flight_steps() >= 2; },
                           std::chrono::seconds(10)));
    fabric.abort_all();
    reader.end_step();  // releasing into an aborted stream is a no-op
    EXPECT_THROW((void)reader.begin_step(), fp::StreamAborted);
}

TEST(Pipeline, SpoolReloadInteractsWithReadAhead) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "sb_test_spool_ra";
    fs::remove_all(dir);
    fs::create_directories(dir);

    fp::Fabric fabric;
    fp::StreamOptions opts(8, dir.string());
    opts.read_ahead = 3;
    const double spool_read0 = counter_total("flexpath.spool_bytes_read");
    write_simple_steps(fabric, "spool-ra", 5, opts);
    // All five steps are parked on disk before the reader attaches.
    EXPECT_EQ(std::distance(fs::directory_iterator(dir), fs::directory_iterator{}),
              5);

    fp::ReaderPort reader(fabric, "spool-ra", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 5u);
    EXPECT_GT(counter_total("flexpath.spool_bytes_read") - spool_read0, 0.0);
    // Spool files are consumed (reloaded and removed) as steps enter the
    // window, so EOS leaves the directory empty.
    EXPECT_TRUE(fs::is_empty(dir));
    fs::remove_all(dir);
}

// A prefetch failure (spool file vanished) poisons the stream and surfaces
// as the original error on the next acquire instead of hanging the reader.
TEST(Pipeline, PrefetchFailurePropagatesToAcquire) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "sb_test_spool_gone";
    fs::remove_all(dir);
    fs::create_directories(dir);

    fp::Fabric fabric;
    fp::StreamOptions opts(8, dir.string());
    opts.read_ahead = 2;
    write_simple_steps(fabric, "spool-gone", 2, opts);
    for (const auto& f : fs::directory_iterator(dir)) fs::remove(f);

    fp::ReaderPort reader(fabric, "spool-gone", 0, 1);
    try {
        (void)reader.begin_step();
        FAIL() << "expected the prefetch failure to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("spool"), std::string::npos)
            << e.what();
    }
    fs::remove_all(dir);
}

// Satellite bugfix: writer ranks disagreeing on a double attribute is an
// error, exactly like the string-attribute path (the seed silently kept the
// first value).
TEST(Pipeline, WritersMustAgreeOnDoubleAttrs) {
    fp::Fabric fabric;
    EXPECT_THROW(
        sb::mpi::run_ranks(2,
                           [&](sb::mpi::Communicator& c) {
                               fp::WriterPort port(fabric, "dattr", c.rank(),
                                                   c.size());
                               port.declare(fp::VarDecl{
                                   "a", fp::DataKind::Float64, u::NdShape{2}, {}});
                               const std::vector<double> v = {1.0};
                               port.put<double>(
                                   "a",
                                   u::Box({static_cast<std::uint64_t>(c.rank())},
                                          {1}),
                                   v);
                               // Rank-dependent value: must be rejected.
                               port.put_attr("dt",
                                             0.25 * (1.0 + c.rank()));
                               port.end_step();
                               port.close();
                           }),
        std::logic_error);
}

// ---- resilience: detach/reattach, retention, replay, liveness --------------

namespace {

/// Single-rank, single-variable contribution: 4 doubles valued `val`.
fp::Contribution simple_contrib(double val) {
    fp::Contribution c;
    c.var_decls["x"] = fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{4}, {}};
    auto data = std::make_shared<std::vector<std::byte>>(4 * sizeof(double));
    for (int k = 0; k < 4; ++k) {
        std::memcpy(data->data() + k * sizeof(double), &val, sizeof(double));
    }
    c.blocks["x"].push_back(fp::Block{u::Box({0}, {4}), std::move(data)});
    return c;
}

/// Disarms every injected fault on scope exit (test isolation).
struct FaultGuard {
    ~FaultGuard() { sb::fault::Registry::global().disarm_all(); }
};

}  // namespace

// A reader incarnation dies after acknowledging two steps; the replacement
// group replays every un-acknowledged step from the retained window with no
// data loss.
TEST(Resilience, DetachReattachReplaysUnacknowledged) {
    fp::Fabric fabric;
    fp::StreamOptions opts(16);
    opts.read_ahead = 2;
    opts.retain_steps = 8;
    write_simple_steps(fabric, "replay", 10, opts);

    auto stream = fabric.get("replay");
    {
        fp::ReaderPort reader(fabric, "replay", 0, 1);
        for (std::uint64_t t = 0; t < 2; ++t) {
            ASSERT_TRUE(reader.begin_step());
            const auto v = reader.read<double>("x", u::Box({0}, {4}));
            for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
            reader.end_step();
        }
    }  // the incarnation dies; steps 2..9 were never acknowledged
    stream->detach_reader();
    EXPECT_TRUE(stream->reader_detached());
    // Retention mode keeps draining the writer: all eight remaining steps
    // fit within read_ahead + retain_steps, so nothing is dropped.
    ASSERT_TRUE(wait_until([&] { return stream->in_flight_steps() == 8; },
                           std::chrono::seconds(10)));

    const double replayed0 = counter_total("flexpath.steps_replayed");
    fp::ReaderPort reader(fabric, "replay", 0, 1);
    std::uint64_t t = 2;  // resumes from the oldest un-acknowledged step
    while (reader.begin_step()) {
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 10u);
    EXPECT_EQ(counter_total("flexpath.steps_replayed") - replayed0, 8.0);
    EXPECT_EQ(stream->steps_lost(), 0u);
    EXPECT_FALSE(stream->reader_detached());
}

// OnDataLoss::Skip: when the retention bound is exhausted the oldest
// retained steps are dropped, the replacement group resumes past them, and
// the loss is counted exactly.
TEST(Resilience, SkipPolicyDropsOldestRetained) {
    fp::Fabric fabric;
    fp::StreamOptions opts(16);
    opts.read_ahead = 2;
    opts.retain_steps = 2;  // in-memory bound: 4 payloads
    opts.on_data_loss = fp::OnDataLoss::Skip;
    write_simple_steps(fabric, "shed-skip", 10, opts);

    auto stream = fabric.get("shed-skip");
    {
        fp::ReaderPort reader(fabric, "shed-skip", 0, 1);
        for (std::uint64_t t = 0; t < 2; ++t) {
            ASSERT_TRUE(reader.begin_step());
            reader.end_step();
        }
    }
    const double skipped0 = counter_total("flexpath.steps_skipped");
    stream->detach_reader();
    // Eight steps remain; four fit in memory, so exactly four are skipped.
    ASSERT_TRUE(wait_until([&] { return stream->steps_lost() == 4; },
                           std::chrono::seconds(10)));
    ASSERT_TRUE(wait_until([&] { return stream->in_flight_steps() == 4; },
                           std::chrono::seconds(10)));
    EXPECT_EQ(counter_total("flexpath.steps_skipped") - skipped0, 4.0);

    fp::ReaderPort reader(fabric, "shed-skip", 0, 1);
    std::uint64_t t = 6;  // steps 2..5 were sacrificed
    while (reader.begin_step()) {
        EXPECT_FALSE(reader.step_lossy());
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 10u);
    EXPECT_EQ(stream->steps_lost(), 4u);
}

// OnDataLoss::ZeroFill: dropped steps keep their metadata and position in
// the sequence; reads return zeros and the step is flagged lossy.
TEST(Resilience, ZeroFillPolicyKeepsMetadata) {
    fp::Fabric fabric;
    fp::StreamOptions opts(16);
    opts.read_ahead = 2;
    opts.retain_steps = 2;
    opts.on_data_loss = fp::OnDataLoss::ZeroFill;
    write_simple_steps(fabric, "shed-zero", 10, opts);

    auto stream = fabric.get("shed-zero");
    {
        fp::ReaderPort reader(fabric, "shed-zero", 0, 1);
        for (std::uint64_t t = 0; t < 2; ++t) {
            ASSERT_TRUE(reader.begin_step());
            reader.end_step();
        }
    }
    stream->detach_reader();
    ASSERT_TRUE(wait_until([&] { return stream->steps_lost() == 4; },
                           std::chrono::seconds(10)));
    ASSERT_TRUE(wait_until([&] { return stream->in_flight_steps() == 8; },
                           std::chrono::seconds(10)));

    fp::ReaderPort reader(fabric, "shed-zero", 0, 1);
    std::uint64_t t = 2;  // every step is still delivered, some without data
    while (reader.begin_step()) {
        const bool lossy = reader.step_lossy();
        EXPECT_EQ(lossy, t < 6) << "step " << t;
        // Metadata survives the data loss: the variable is fully described.
        EXPECT_EQ(reader.var("x").global_shape, u::NdShape{4});
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) {
            EXPECT_EQ(x, lossy ? 0.0 : static_cast<double>(t)) << "step " << t;
        }
        if (lossy) {
            EXPECT_FALSE(
                reader.try_read_view<double>("x", u::Box({0}, {4})).has_value());
        }
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 10u);
    EXPECT_EQ(stream->steps_lost(), 4u);
}

// A spooled stream spills retained steps to disk instead of shedding them:
// detach/reattach replays everything even with a tiny in-memory bound.
TEST(Resilience, SpooledRetentionParksReplayOnDisk) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "sb_test_spool_retain";
    fs::remove_all(dir);
    fs::create_directories(dir);

    fp::Fabric fabric;
    fp::StreamOptions opts(16, dir.string());
    opts.read_ahead = 2;
    opts.retain_steps = 1;  // irrelevant: the spool holds replay material
    opts.on_data_loss = fp::OnDataLoss::Skip;
    write_simple_steps(fabric, "spool-retain", 6, opts);

    auto stream = fabric.get("spool-retain");
    {
        fp::ReaderPort reader(fabric, "spool-retain", 0, 1);
        for (std::uint64_t t = 0; t < 2; ++t) {
            ASSERT_TRUE(reader.begin_step());
            reader.end_step();
        }
    }
    stream->detach_reader();
    ASSERT_TRUE(wait_until([&] { return stream->in_flight_steps() == 4; },
                           std::chrono::seconds(10)));
    // Retained data is parked on disk, not held in memory or dropped.
    EXPECT_GT(std::distance(fs::directory_iterator(dir), fs::directory_iterator{}),
              0);
    EXPECT_EQ(stream->steps_lost(), 0u);

    fp::ReaderPort reader(fabric, "spool-retain", 0, 1);
    std::uint64_t t = 2;
    while (reader.begin_step()) {
        EXPECT_FALSE(reader.step_lossy());
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 6u);
    EXPECT_EQ(stream->steps_lost(), 0u);
    EXPECT_TRUE(fs::is_empty(dir));  // replayed spool files were consumed
    fs::remove_all(dir);
}

// detach_writer discards partial per-rank submissions: the relaunched
// incarnation resubmits the whole step and readers never see torn data.
TEST(Resilience, WriterDetachDiscardsPartialSteps) {
    fp::Fabric fabric;
    auto stream = fabric.get("wdetach");
    fp::StreamOptions opts(4);
    stream->attach_writer(2, opts);

    const auto half = [](int rank, double val) {
        fp::Contribution c;
        c.var_decls["x"] =
            fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{2}, {}};
        auto data = std::make_shared<std::vector<std::byte>>(sizeof(double));
        std::memcpy(data->data(), &val, sizeof(double));
        c.blocks["x"].push_back(fp::Block{
            u::Box({static_cast<std::uint64_t>(rank)}, {1}), std::move(data)});
        return c;
    };
    stream->submit(0, half(0, 5.0));  // rank 1 dies before contributing
    EXPECT_EQ(stream->writer_resume_step(), 0u);
    stream->detach_writer(/*source_replays_from_zero=*/false);
    EXPECT_EQ(stream->writer_resume_step(), 0u);

    // The relaunched incarnation regenerates step 0 from both ranks.
    stream->submit(0, half(0, 7.0));
    stream->submit(1, half(1, 8.0));
    stream->close_writer(0);
    stream->close_writer(1);

    fp::ReaderPort reader(fabric, "wdetach", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    const auto v = reader.read<double>("x", u::Box({0}, {2}));
    EXPECT_EQ(v[0], 7.0);  // the dead incarnation's 5.0 was discarded
    EXPECT_EQ(v[1], 8.0);
    reader.end_step();
    EXPECT_FALSE(reader.begin_step());
}

// A restarted deterministic source regenerates its sequence from step 0;
// the stream suppresses the re-submissions of steps it already assembled,
// so readers see each step exactly once.
TEST(Resilience, SourceReplayIsSuppressed) {
    fp::Fabric fabric;
    auto stream = fabric.get("sredo");
    stream->attach_writer(1, fp::StreamOptions{8});
    stream->submit(0, simple_contrib(0.0));
    stream->submit(0, simple_contrib(1.0));
    EXPECT_EQ(stream->writer_resume_step(), 2u);
    stream->detach_writer(/*source_replays_from_zero=*/true);

    const double sup0 = counter_total("flexpath.replay_suppressed");
    for (int t = 0; t < 4; ++t) {
        stream->submit(0, simple_contrib(static_cast<double>(t)));
    }
    stream->close_writer(0);
    EXPECT_EQ(counter_total("flexpath.replay_suppressed") - sup0, 2.0);

    fp::ReaderPort reader(fabric, "sredo", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, static_cast<double>(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 4u);  // steps 0..3, none duplicated
}

// A submit blocked on a full queue longer than the liveness timeout throws
// PeerLivenessError instead of hanging the writer on a dead reader forever.
TEST(Resilience, WriterLivenessConvertsStuckReaderIntoError) {
    fp::Fabric fabric;
    auto stream = fabric.get("live-w");
    fp::StreamOptions opts(1);
    opts.liveness_ms = 100.0;
    stream->attach_writer(1, opts);
    stream->submit(0, simple_contrib(0.0));  // fills the queue; nobody drains
    EXPECT_THROW(stream->submit(0, simple_contrib(1.0)), fp::PeerLivenessError);
}

// An acquire blocked on a silent writer group longer than the liveness
// timeout throws PeerLivenessError instead of waiting forever.
TEST(Resilience, ReaderLivenessConvertsSilentWriterIntoError) {
    fp::Fabric fabric;
    auto stream = fabric.get("live-r");
    fp::StreamOptions opts(4);
    opts.liveness_ms = 100.0;
    stream->attach_writer(1, opts);  // attaches but never submits
    fp::ReaderPort reader(fabric, "live-r", 0, 1);
    EXPECT_THROW((void)reader.begin_step(), fp::PeerLivenessError);
}

// ---- abort-path edge cases -------------------------------------------------

// Aborting while the prefetcher is inside a (slow) spool reload must not
// hang or crash: the reader unwinds with StreamAborted and the prefetcher
// notices the abort when the reload returns.
TEST(Resilience, AbortDuringSpoolReload) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "sb_test_spool_abort";
    fs::remove_all(dir);
    fs::create_directories(dir);

    const FaultGuard guard;
    auto& faults = sb::fault::Registry::global();
    faults.arm_from_env("flexpath.spool_reload=delay:80");

    fp::Fabric fabric;
    fp::StreamOptions opts(8, dir.string());
    opts.read_ahead = 2;
    write_simple_steps(fabric, "spool-abort", 3, opts);

    fp::ReaderPort reader(fabric, "spool-abort", 0, 1);
    // The prefetcher is now inside the delayed reload (off the stream lock).
    ASSERT_TRUE(wait_until(
        [&] { return faults.hits("flexpath.spool_reload") >= 1; },
        std::chrono::seconds(10)));
    fabric.abort_all();
    EXPECT_THROW((void)reader.begin_step(), fp::StreamAborted);
    // Scope exit joins the prefetcher mid-reload: must not hang (the test
    // timeout and the TSan/ASan legs enforce it).
    fs::remove_all(dir);
}

// Abort with a partially-acknowledged in-flight window: one rank released
// the step, its peer still holds it.  Both unwind; the late release of the
// dead step is a no-op.
TEST(Resilience, AbortWithPartialAcknowledgements) {
    fp::Fabric fabric;
    fp::StreamOptions opts(8);
    opts.read_ahead = 2;
    write_simple_steps(fabric, "abort-ack", 3, opts);

    const double aborts0 = counter_total("flexpath.aborts");
    std::atomic<bool> aborted{false};
    sb::mpi::run_ranks(2, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "abort-ack", c.rank(), c.size());
        ASSERT_TRUE(port.begin_step());
        c.barrier();  // both ranks hold step 0 before anyone aborts
        if (c.rank() == 0) {
            port.end_step();  // rank 0 acknowledged step 0; rank 1 holds it
            fabric.abort_all();
            aborted.store(true);
        } else {
            ASSERT_TRUE(wait_until([&] { return aborted.load(); },
                                   std::chrono::seconds(10)));
            port.end_step();  // releasing into an aborted stream: no-op
        }
        EXPECT_THROW((void)port.begin_step(), fp::StreamAborted);
    });
    EXPECT_EQ(counter_total("flexpath.aborts") - aborts0, 1.0);
}

// abort() is idempotent: the second call neither throws nor double-counts.
TEST(Resilience, DoubleAbortIsIdempotent) {
    fp::Fabric fabric;
    auto stream = fabric.get("dabort");
    stream->attach_writer(1, fp::StreamOptions{2});
    const double aborts0 = counter_total("flexpath.aborts");
    stream->abort();
    stream->abort();
    EXPECT_EQ(counter_total("flexpath.aborts") - aborts0, 1.0);
    EXPECT_THROW(stream->submit(0, simple_contrib(0.0)), fp::StreamAborted);
}

// ---- zero-copy write path (put_view + BufferPool) --------------------------

namespace {

/// Pins the pool on (or off) for one scope and isolates it behind
/// generation bumps on both sides.
struct PoolGuard {
    explicit PoolGuard(bool on) : was(sb::util::pool_enabled()) {
        sb::util::set_pool_enabled(on);
        sb::util::BufferPool::global().bump_generation();
    }
    ~PoolGuard() {
        sb::util::BufferPool::global().bump_generation();
        sb::util::set_pool_enabled(was);
    }
    bool was;
};

/// run_mxn's writer loop, but filling the transport's pooled buffer in
/// place via put_view instead of staging + put<double>.
void run_mxn_view(int writers, int readers, std::uint64_t n, std::uint64_t m,
                  std::uint64_t steps) {
    fp::Fabric fabric;
    const u::NdShape shape{n, m};

    std::jthread writer_group([&] {
        sb::mpi::run_ranks(writers, [&](sb::mpi::Communicator& c) {
            fp::WriterPort port(fabric, "sv", c.rank(), c.size(),
                                fp::StreamOptions{2});
            for (std::uint64_t t = 0; t < steps; ++t) {
                port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape,
                                         {"rows", "cols"}});
                const u::Box box = u::partition_along(shape, 0, c.rank(), c.size());
                const std::span<std::byte> raw = port.put_view("a", box);
                ASSERT_EQ(raw.size(), box.volume() * sizeof(double));
                const std::span<double> data{
                    reinterpret_cast<double*>(raw.data()), box.volume()};
                std::size_t k = 0;
                for (std::uint64_t i = box.offset[0];
                     i < box.offset[0] + box.count[0]; ++i) {
                    for (std::uint64_t j = 0; j < m; ++j) {
                        data[k++] = stamp(i, j) + static_cast<double>(t);
                    }
                }
                port.end_step();
            }
            port.close();
        });
    });

    sb::mpi::run_ranks(readers, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "sv", c.rank(), c.size());
        std::uint64_t t = 0;
        while (port.begin_step()) {
            const u::Box box = u::partition_along(shape, 1, c.rank(), c.size());
            const std::vector<double> data = port.read<double>("a", box);
            std::size_t k = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                for (std::uint64_t j = box.offset[1];
                     j < box.offset[1] + box.count[1]; ++j) {
                    ASSERT_EQ(data[k++], stamp(i, j) + static_cast<double>(t))
                        << "at (" << i << "," << j << ") step " << t;
                }
            }
            port.end_step();
            ++t;
        }
        EXPECT_EQ(t, steps);
    });
}

}  // namespace

TEST(WritePath, PutViewRedistributesExactlyPooled) {
    const PoolGuard pool(true);
    run_mxn_view(2, 3, 12, 7, 6);
}

TEST(WritePath, PutViewRedistributesExactlyUnpooled) {
    const PoolGuard pool(false);
    run_mxn_view(2, 3, 12, 7, 6);
}

// Steady-state publishing recycles: after the first step's buffer retires,
// subsequent put_views are pool hits, and close() leaves the storage parked
// rather than leaked outstanding.
TEST(WritePath, StepBuffersRecycleAcrossSteps) {
    if (!sb::obs::enabled()) GTEST_SKIP() << "SB_METRICS=off";
    const PoolGuard pool(true);
    auto& reg = sb::obs::Registry::global();
    const std::uint64_t hits0 = reg.counter("pool.hits", {}).value();

    fp::Fabric fabric;
    const u::NdShape shape{512};
    {
        fp::WriterPort port(fabric, "recycle", 0, 1, fp::StreamOptions{1});
        fp::ReaderPort reader(fabric, "recycle", 0, 1);
        for (std::uint64_t t = 0; t < 6; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, shape, {}});
            const std::span<std::byte> raw =
                port.put_view("x", u::Box::whole(shape));
            const std::span<double> xs{reinterpret_cast<double*>(raw.data()), 512};
            for (std::size_t i = 0; i < xs.size(); ++i) {
                xs[i] = static_cast<double>(t * 1000 + i);
            }
            port.end_step();
            ASSERT_TRUE(reader.begin_step());
            const auto v = reader.read<double>("x", u::Box::whole(shape));
            for (std::size_t i = 0; i < v.size(); ++i) {
                ASSERT_EQ(v[i], static_cast<double>(t * 1000 + i));
            }
            reader.end_step();  // releases the step: its buffer retires
        }
        port.close();
    }
    // Lockstep cadence: every step after the first reuses the retired
    // buffer of its predecessor.
    EXPECT_GE(reg.counter("pool.hits", {}).value() - hits0, 5u);
    EXPECT_GT(sb::util::BufferPool::global().free_buffers(), 0u);
}

// The alias-safety acceptance for SB_FAULT replay: steps retained for a
// future reader incarnation pin their pooled payloads (ordinary shared_ptr
// refcounting), so the writer recycling buffers step after step can never
// scribble over a replayable step.  The replacement reader must see every
// replayed value exactly as written.
TEST(Resilience, RetiredBuffersNeverAliasRetainedSteps) {
    const PoolGuard pool(true);
    fp::Fabric fabric;
    fp::StreamOptions opts(16);
    opts.read_ahead = 2;
    opts.retain_steps = 8;

    const u::NdShape shape{64};
    {
        fp::WriterPort port(fabric, "replay-pool", 0, 1, opts);
        for (std::uint64_t t = 0; t < 10; ++t) {
            port.declare(fp::VarDecl{"x", fp::DataKind::Float64, shape, {}});
            const std::span<std::byte> raw =
                port.put_view("x", u::Box::whole(shape));
            const std::span<double> xs{reinterpret_cast<double*>(raw.data()), 64};
            for (std::size_t i = 0; i < xs.size(); ++i) {
                xs[i] = static_cast<double>(t) + static_cast<double>(i) * 0.5;
            }
            port.end_step();
        }
        port.close();
    }

    auto stream = fabric.get("replay-pool");
    {
        fp::ReaderPort reader(fabric, "replay-pool", 0, 1);
        for (std::uint64_t t = 0; t < 2; ++t) {
            ASSERT_TRUE(reader.begin_step());
            reader.end_step();
        }
    }  // incarnation dies; steps 2..9 stay retained, pinning their payloads
    stream->detach_reader();
    ASSERT_TRUE(wait_until([&] { return stream->in_flight_steps() == 8; },
                           std::chrono::seconds(10)));

    fp::ReaderPort reader(fabric, "replay-pool", 0, 1);
    std::uint64_t t = 2;
    while (reader.begin_step()) {
        const auto v = reader.read<double>("x", u::Box::whole(shape));
        for (std::size_t i = 0; i < v.size(); ++i) {
            ASSERT_EQ(v[i],
                      static_cast<double>(t) + static_cast<double>(i) * 0.5)
                << "replayed step " << t << " index " << i
                << " was corrupted by buffer recycling";
        }
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 10u);
    EXPECT_EQ(stream->steps_lost(), 0u);
}
