// Tests for sb::durable — the crash-consistent step log: CRC32C vectors,
// frame round-trips, torn-tail truncation, mid-log corruption quarantine
// through the stream's OnDataLoss policy, cold-restart bit-identity at the
// Workflow level, late-join replay, the SB_DURABLE off gate, and the
// durable.* fault points (torn:<bytes> included) with exact counter deltas.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/launch_script.hpp"
#include "core/workflow.hpp"
#include "durable/log.hpp"
#include "fault/fault.hpp"
#include "ffs/crc32c.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/stream.hpp"
#include "flexpath/writer.hpp"
#include "obs/metrics.hpp"
#include "sim/source_component.hpp"
#include "util/ndarray.hpp"

namespace d = sb::durable;
namespace f = sb::ffs;
namespace fp = sb::flexpath;
namespace ft = sb::fault;
namespace u = sb::util;
namespace fs = std::filesystem;

namespace {

double counter_total(const std::string& name) {
    return sb::obs::Registry::global().total(name);
}

/// Fresh scratch directory under the test tmpdir.
fs::path scratch(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::span<const std::byte> bytes_of(const std::string& s) {
    return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

/// A payload the log treats as opaque — segments spliced like the real
/// scatter-gather spool packet, here just one span over the header.
d::Options log_opts(const fs::path& dir) {
    d::Options o;
    o.dir = dir.string();
    return o;
}

f::EncodedSegments payload_of(const std::string& s) {
    f::EncodedSegments segs;
    const auto b = bytes_of(s);
    segs.header.assign(b.begin(), b.end());
    segs.segments.emplace_back(segs.header);  // segments are the full list
    segs.total = segs.header.size();
    return segs;
}

std::string str_of(const f::Bytes& b) {
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Per-step marker value with a distinctive 8-byte pattern (used to locate
/// one step's payload inside a segment file for corruption tests).
double val(std::uint64_t t) { return 12345.678 + static_cast<double>(t); }

/// Writes `steps` 4-element steps of val(t) through a 1-rank writer group
/// (EOS on close).  With durable options set, every step lands in the log.
void write_marked_steps(fp::Fabric& fabric, const std::string& stream,
                        std::uint64_t steps, const fp::StreamOptions& opts) {
    fp::WriterPort port(fabric, stream, 0, 1, opts);
    for (std::uint64_t t = 0; t < steps; ++t) {
        port.declare(fp::VarDecl{"x", fp::DataKind::Float64, u::NdShape{4}, {}});
        const std::vector<double> v(4, val(t));
        port.put<double>("x", u::Box({0}, {4}), v);
        port.end_step();
    }
    port.close();
}

std::vector<fs::path> sblog_files(const fs::path& dir) {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".sblog") out.push_back(e.path());
    }
    return out;
}

/// Flips one byte inside the first occurrence of `needle` in `path`.
void corrupt_first_occurrence(const fs::path& path,
                              std::span<const std::byte> needle) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const std::string pat(reinterpret_cast<const char*>(needle.data()),
                          needle.size());
    const auto at = buf.find(pat);
    ASSERT_NE(at, std::string::npos) << "pattern not found in " << path;
    buf[at] = static_cast<char>(buf[at] ^ 0x5A);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

class DurableTest : public ::testing::Test {
protected:
    void TearDown() override { ft::Registry::global().disarm_all(); }
};

}  // namespace

// ---- CRC32C ----------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
    // RFC 3720 check value for "123456789".
    EXPECT_EQ(sb::ffs::crc32c(bytes_of("123456789")), 0xE3069283u);
    EXPECT_EQ(sb::ffs::crc32c({}), 0x00000000u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
    const std::string s = "the quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= s.size(); split += 7) {
        std::uint32_t c = sb::ffs::crc32c_init();
        c = sb::ffs::crc32c_update(c, bytes_of(s.substr(0, split)));
        c = sb::ffs::crc32c_update(c, bytes_of(s.substr(split)));
        EXPECT_EQ(sb::ffs::crc32c_final(c), sb::ffs::crc32c(bytes_of(s)))
            << "split at " << split;
    }
}

// ---- option parsing --------------------------------------------------------

TEST(DurableOptions, FsyncPolicyParse) {
    d::Options o;
    EXPECT_TRUE(d::parse_fsync_policy("never", o));
    EXPECT_EQ(o.fsync, d::FsyncPolicy::Never);
    EXPECT_TRUE(d::parse_fsync_policy("commit", o));
    EXPECT_EQ(o.fsync, d::FsyncPolicy::Commit);
    EXPECT_TRUE(d::parse_fsync_policy("interval:25", o));
    EXPECT_EQ(o.fsync, d::FsyncPolicy::Interval);
    EXPECT_DOUBLE_EQ(o.fsync_interval_ms, 25.0);
    EXPECT_FALSE(d::parse_fsync_policy("interval:0", o));
    EXPECT_FALSE(d::parse_fsync_policy("interval:abc", o));
    EXPECT_FALSE(d::parse_fsync_policy("bogus", o));
}

TEST(DurableOptions, TornFaultSpecParse) {
    const ft::FaultSpec spec = ft::parse_spec("durable.append=torn:512");
    EXPECT_EQ(spec.action, ft::Action::Torn);
    EXPECT_EQ(spec.torn_bytes, 512u);
    EXPECT_THROW((void)ft::parse_spec("durable.append=torn:0"),
                 std::invalid_argument);
    EXPECT_THROW((void)ft::parse_spec("durable.append=torn:"),
                 std::invalid_argument);
}

TEST(DurableOptions, ResolveEnabledGate) {
    const bool env_on = d::durable_enabled_from_env();
    d::Options o;
    EXPECT_FALSE(d::resolve_enabled(o));  // no dir -> never on
    o.dir = "/tmp/somewhere";
    o.mode = d::Mode::On;
    EXPECT_TRUE(d::resolve_enabled(o));
    o.mode = d::Mode::Off;
    EXPECT_FALSE(d::resolve_enabled(o));
    o.mode = d::Mode::Auto;
    d::set_durable_enabled(false);
    EXPECT_FALSE(d::resolve_enabled(o));
    d::set_durable_enabled(true);
    EXPECT_TRUE(d::resolve_enabled(o));
    d::set_durable_enabled(env_on);  // restore the environment's resolution
}

// ---- log round-trip and recovery ------------------------------------------

TEST_F(DurableTest, RoundTripAppendLoadRecover) {
    const fs::path dir = scratch("sb_durable_rt");
    d::Options o = log_opts(dir);
    {
        d::Log log("rt", o);
        EXPECT_EQ(log.next_step(), 0u);
        for (std::uint64_t t = 0; t < 3; ++t) {
            const std::string meta = "meta-" + std::to_string(t);
            log.append_step(t, /*layout_gen=*/7, bytes_of(meta),
                            payload_of("payload-" + std::to_string(t)));
        }
        log.append_ack(2);
        EXPECT_GT(log.log_bytes(), 0u);

        const d::LoadedStep s1 = log.load_step(1);
        EXPECT_EQ(s1.step, 1u);
        EXPECT_EQ(s1.layout_gen, 7u);
        EXPECT_EQ(str_of(s1.meta), "meta-1");
        EXPECT_EQ(str_of(s1.payload), "payload-1");
    }
    {
        // Reopen: recovery resumes at the acknowledged frontier.
        d::Log log("rt", o);
        const d::RecoveryReport& r = log.recovery();
        EXPECT_EQ(r.steps_recovered, 3u);
        EXPECT_EQ(r.steps_quarantined, 0u);
        EXPECT_EQ(r.acked, 2u);
        EXPECT_EQ(r.next_step, 3u);
        EXPECT_FALSE(r.complete);
        EXPECT_EQ(r.torn_bytes, 0u);
        ASSERT_EQ(log.recovered().size(), 1u);  // only step 2 is unacked
        EXPECT_EQ(log.recovered()[0].step, 2u);
        EXPECT_EQ(log.max_layout_gen(), 7u);
        log.append_eos();
    }
    {
        // Replay-history mode exposes the whole surviving history.
        o.replay_history = true;
        d::Log log("rt", o);
        EXPECT_TRUE(log.complete());
        ASSERT_EQ(log.recovered().size(), 3u);
        for (std::uint64_t t = 0; t < 3; ++t) {
            const d::LoadedStep s = log.load_step(t);
            EXPECT_EQ(str_of(s.payload), "payload-" + std::to_string(t));
        }
        EXPECT_THROW((void)log.load_step(9), d::SpoolError);
    }
}

TEST_F(DurableTest, TornTailIsReportedThenTruncated) {
    const fs::path dir = scratch("sb_durable_torn");
    const d::Options o = log_opts(dir);
    std::uintmax_t committed = 0;
    {
        d::Log log("tt", o);
        log.append_step(0, 1, bytes_of("m0"), payload_of("p0"));
        log.append_step(1, 1, bytes_of("m1"), payload_of("p1"));
        committed = log.log_bytes();
        log.append_step(2, 1, bytes_of("m2"), payload_of("p2"));
    }
    const auto files = sblog_files(dir);
    ASSERT_EQ(files.size(), 1u);
    const std::uintmax_t full = fs::file_size(files[0]);
    fs::resize_file(files[0], full - 5);  // tear the last frame mid-write

    // scan_dir (--recover) reports the tear without mutating the log.
    const auto reports = d::scan_dir(dir.string());
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].stream, "tt");
    EXPECT_EQ(reports[0].steps_recovered, 2u);
    EXPECT_EQ(reports[0].torn_bytes, full - 5 - committed);
    EXPECT_EQ(fs::file_size(files[0]), full - 5);

    // Opening for real repairs: the torn tail is truncated back to the last
    // committed frame and appends resume at step 2.
    d::Log log("tt", o);
    EXPECT_EQ(log.recovery().steps_recovered, 2u);
    EXPECT_EQ(log.recovery().torn_bytes, full - 5 - committed);
    EXPECT_EQ(fs::file_size(files[0]), committed);
    EXPECT_EQ(log.next_step(), 2u);
    log.append_step(2, 1, bytes_of("m2"), payload_of("p2-again"));
    EXPECT_EQ(str_of(log.load_step(2).payload), "p2-again");
}

// ---- corruption quarantine through the stream's OnDataLoss policy ---------

namespace {

/// Builds a finished 4-step durable stream and corrupts step 2's payload on
/// disk; returns the log directory.
fs::path corrupted_stream_dir(const std::string& tag) {
    const fs::path dir = scratch("sb_durable_" + tag);
    fp::StreamOptions opts(8);
    opts.durable.dir = dir.string();
    opts.durable.mode = d::Mode::On;
    {
        fp::Fabric fabric;
        write_marked_steps(fabric, "q", 4, opts);
    }
    const auto files = sblog_files(dir);
    EXPECT_EQ(files.size(), 1u);
    std::array<std::byte, 8> pat;
    const double v = val(2);
    std::memcpy(pat.data(), &v, sizeof v);
    corrupt_first_occurrence(files[0], pat);
    return dir;
}

fp::StreamOptions replay_options(const fs::path& dir, fp::OnDataLoss policy) {
    fp::StreamOptions opts(8);
    opts.durable.dir = dir.string();
    opts.durable.mode = d::Mode::On;
    opts.durable.replay_history = true;
    opts.on_data_loss = policy;
    return opts;
}

}  // namespace

TEST_F(DurableTest, QuarantineSkipVacatesTheStep) {
    const fs::path dir = corrupted_stream_dir("skip");
    fp::Fabric fabric;
    const fp::StreamOptions opts = replay_options(dir, fp::OnDataLoss::Skip);
    fabric.get("q")->open_durable(opts);

    fp::ReaderPort reader(fabric, "q", 0, 1);
    std::vector<std::uint64_t> seen;
    while (reader.begin_step()) {
        seen.push_back(reader.current_step());
        EXPECT_FALSE(reader.step_lossy());
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, val(reader.current_step()));
        reader.end_step();
    }
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 3}));
}

TEST_F(DurableTest, QuarantineZeroFillKeepsMetadata) {
    const fs::path dir = corrupted_stream_dir("zf");
    fp::Fabric fabric;
    const fp::StreamOptions opts = replay_options(dir, fp::OnDataLoss::ZeroFill);
    fabric.get("q")->open_durable(opts);

    fp::ReaderPort reader(fabric, "q", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        EXPECT_EQ(reader.current_step(), t);
        const bool lossy = reader.step_lossy();
        EXPECT_EQ(lossy, t == 2) << "step " << t;
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, lossy ? 0.0 : val(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 4u);
}

TEST_F(DurableTest, QuarantineFailPoisonsTheReader) {
    const fs::path dir = corrupted_stream_dir("fail");
    fp::Fabric fabric;
    const fp::StreamOptions opts = replay_options(dir, fp::OnDataLoss::Fail);
    fabric.get("q")->open_durable(opts);

    fp::ReaderPort reader(fabric, "q", 0, 1);
    std::uint64_t delivered = 0;
    try {
        while (reader.begin_step()) {
            ++delivered;
            reader.end_step();
        }
        FAIL() << "expected the quarantined frame to poison the stream";
    } catch (const d::SpoolError& e) {
        EXPECT_EQ(e.step(), 2u);
        EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos)
            << e.what();
        EXPECT_FALSE(e.file().empty());
    }
    EXPECT_LE(delivered, 2u);
}

// ---- late join and clean replay -------------------------------------------

TEST_F(DurableTest, LateJoiningReaderReplaysFromStepZero) {
    const fs::path dir = scratch("sb_durable_latejoin");
    fp::StreamOptions opts(8);
    opts.durable.dir = dir.string();
    opts.durable.mode = d::Mode::On;
    {
        fp::Fabric fabric;
        write_marked_steps(fabric, "late", 3, opts);
    }  // writer's process is gone; only the log remains

    fp::Fabric fabric;
    fp::StreamOptions ropts = opts;
    ropts.durable.replay_history = true;
    fabric.get("late")->open_durable(ropts);
    fp::ReaderPort reader(fabric, "late", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        EXPECT_EQ(reader.current_step(), t);
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, val(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 3u);  // terminated by the logged EOS, no writer ever attached
}

// ---- SB_DURABLE off gate ---------------------------------------------------

TEST_F(DurableTest, ModeOffReproducesTheVolatilePath) {
    const fs::path dir = scratch("sb_durable_off");
    fp::StreamOptions opts(8);
    opts.durable.dir = dir.string();
    opts.durable.mode = d::Mode::Off;

    fp::Fabric fabric;
    write_marked_steps(fabric, "off", 3, opts);
    EXPECT_TRUE(sblog_files(dir).empty());  // gate off -> no log files

    fp::ReaderPort reader(fabric, "off", 0, 1);
    std::uint64_t t = 0;
    while (reader.begin_step()) {
        const auto v = reader.read<double>("x", u::Box({0}, {4}));
        for (const double x : v) EXPECT_EQ(x, val(t));
        reader.end_step();
        ++t;
    }
    EXPECT_EQ(t, 3u);
}

// ---- typed spool errors (volatile path) ------------------------------------

TEST_F(DurableTest, MissingSpoolFileThrowsTypedError) {
    const fs::path dir = scratch("sb_durable_spoolerr");
    fp::Fabric fabric;
    fp::StreamOptions opts(8, dir.string());  // volatile spool, no durable log
    write_marked_steps(fabric, "gone", 2, opts);
    for (const auto& f : fs::directory_iterator(dir)) fs::remove(f);

    fp::ReaderPort reader(fabric, "gone", 0, 1);
    try {
        (void)reader.begin_step();
        FAIL() << "expected the missing spool file to surface";
    } catch (const d::SpoolError& e) {
        EXPECT_NE(std::string(e.what()).find("missing spool file"),
                  std::string::npos)
            << e.what();
        EXPECT_FALSE(e.file().empty());
        EXPECT_LT(e.step(), 2u);
    }
}

// ---- fault points with exact counter deltas --------------------------------

TEST_F(DurableTest, TornWriteFaultLeavesARecoverableTear) {
    const fs::path dir = scratch("sb_durable_chaos");
    d::Options o = log_opts(dir);
    o.fsync = d::FsyncPolicy::Commit;

    const double appended0 = counter_total("durable.steps_appended");
    const double torn0 = counter_total("durable.torn_bytes");
    const double fsyncs0 = counter_total("durable.fsyncs");
    const double recovered0 = counter_total("durable.steps_recovered");
    {
        d::Log log("chaos", o);
        log.append_step(0, 1, bytes_of("m0"), payload_of("p0"));
        log.append_step(1, 1, bytes_of("m1"), payload_of("p1"));
        ft::Registry::global().arm(ft::parse_spec("durable.append:chaos=torn:7"));
        EXPECT_THROW(log.append_step(2, 1, bytes_of("m2"), payload_of("p2")),
                     ft::InjectedCrash);
    }
    ft::Registry::global().disarm_all();
    EXPECT_EQ(counter_total("durable.steps_appended") - appended0, 2.0);
    EXPECT_EQ(counter_total("durable.torn_bytes") - torn0, 7.0);
    EXPECT_EQ(counter_total("durable.fsyncs") - fsyncs0, 2.0);

    // Frame for step 2: 37 head + 2 meta + 2 payload + 8 tail = 49 bytes,
    // landed 7 short, so the scanner finds (and truncates) a 42-byte
    // uncommitted partial frame at the tail.
    {
        d::Log log("chaos", o);
        const d::RecoveryReport& r = log.recovery();
        EXPECT_EQ(r.steps_recovered, 2u);
        EXPECT_EQ(r.torn_bytes, 42u);
        EXPECT_EQ(r.next_step, 2u);
        bool truncated_note = false;
        for (const std::string& n : r.notes) {
            if (n.find("truncated torn tail (42 bytes)") != std::string::npos) {
                truncated_note = true;
            }
        }
        EXPECT_TRUE(truncated_note) << log.recovery().to_string();
        EXPECT_EQ(str_of(log.load_step(0).payload), "p0");
        EXPECT_EQ(str_of(log.load_step(1).payload), "p1");
        EXPECT_THROW((void)log.load_step(2), d::SpoolError);
    }
    // Write path counted the 7-byte shortfall; recovery counts the whole
    // truncated partial frame.
    EXPECT_EQ(counter_total("durable.torn_bytes") - torn0, 49.0);
    EXPECT_EQ(counter_total("durable.steps_recovered") - recovered0, 2.0);
}

TEST_F(DurableTest, ScanFaultPointFires) {
    const fs::path dir = scratch("sb_durable_scanfault");
    ft::Registry::global().arm(ft::parse_spec("durable.scan:scanfault=throw"));
    EXPECT_THROW(d::Log("scanfault", log_opts(dir)), ft::InjectedFault);
}

TEST_F(DurableTest, FsyncFaultPointFires) {
    const fs::path dir = scratch("sb_durable_fsyncfault");
    d::Options o = log_opts(dir);
    o.fsync = d::FsyncPolicy::Commit;
    d::Log log("fsf", o);
    ft::Registry::global().arm(ft::parse_spec("durable.fsync:fsf=crash"));
    EXPECT_THROW(log.append_step(0, 1, bytes_of("m"), payload_of("p")),
                 ft::InjectedCrash);
}

// ---- retention / GC --------------------------------------------------------

TEST_F(DurableTest, CollectDeletesOnlyAckedWholeSegments) {
    const fs::path dir = scratch("sb_durable_gc");
    d::Options o = log_opts(dir);
    o.segment_bytes = 1;   // every frame rolls into its own segment
    o.retain_steps = 1;
    {
        d::Log log("gc", o);
        for (std::uint64_t t = 0; t < 5; ++t) {
            log.append_step(t, 1, bytes_of("m"),
                            payload_of("p" + std::to_string(t)));
        }
        EXPECT_EQ(sblog_files(dir).size(), 5u);
        log.collect(5);  // nothing acked yet: nothing may be deleted
        EXPECT_EQ(sblog_files(dir).size(), 5u);
        log.append_ack(4);
        log.collect(4);  // floor = 4 - retain 1 = 3: steps 0..2 collectable
        EXPECT_EQ(sblog_files(dir).size(), 3u);
        // The collected history is gone; the retained tail still loads.
        EXPECT_THROW((void)log.load_step(0), d::SpoolError);
        EXPECT_EQ(str_of(log.load_step(3).payload), "p3");
        EXPECT_EQ(str_of(log.load_step(4).payload), "p4");
    }
    // keep-all default: no GC ever.
    const fs::path dir2 = scratch("sb_durable_gc_keep");
    d::Options o2 = log_opts(dir2);
    o2.segment_bytes = 1;
    d::Log log2("gc", o2);
    for (std::uint64_t t = 0; t < 4; ++t) {
        log2.append_step(t, 1, bytes_of("m"), payload_of("p"));
    }
    log2.append_ack(4);
    const std::size_t before = sblog_files(dir2).size();
    log2.collect(4);
    EXPECT_EQ(sblog_files(dir2).size(), before);
}

// ---- cold restart (whole-process relaunch) ---------------------------------

TEST_F(DurableTest, ColdRestartResumesBitIdentically) {
    sb::sim::register_simulations();
    const fs::path dir = scratch("sb_durable_cold");
    const std::string hist = ::testing::TempDir() + "/sb_durable_cold_hist.txt";
    const std::string ref = ::testing::TempDir() + "/sb_durable_cold_ref.txt";
    fs::remove(hist);
    fs::remove(ref);
    const std::string sim = "aprun -n 1 gromacs atoms=64 steps=4 substeps=3 &\n";
    const std::string mid = "aprun -n 1 magnitude gmx.fp coords radii.fp radii &\n";

    fp::StreamOptions opts(8);
    opts.durable.dir = dir.string();
    opts.durable.mode = d::Mode::On;

    // Run 1: the middle component's rank dies after publishing output step 1
    // but before acknowledging its input; the default Never policy makes the
    // whole "process" go down with it.  (No sink in this run, so the crash
    // point needs no coordination with a file writer.)
    ft::Registry::global().arm(ft::parse_spec("component.step:magnitude=crash@2"));
    {
        fp::Fabric fabric;
        sb::core::Workflow wf =
            sb::core::build_workflow(fabric, sim + mid + "wait\n", opts);
        EXPECT_THROW(wf.run(), std::exception);
    }
    ft::Registry::global().disarm_all();
    EXPECT_FALSE(sblog_files(dir).empty());

    // Run 2: a fresh fabric — the relaunched process.  The source replays
    // its deterministic sequence (suppressed up to the logged frontier), the
    // middle unit fast-forwards past the inputs whose outputs are already
    // durable, and the late-added sink replays radii.fp from step 0.
    const double suppressed0 = counter_total("flexpath.replay_suppressed");
    {
        fp::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(
            fabric,
            sim + mid + "aprun -n 1 histogram radii.fp radii 8 " + hist +
                " &\nwait\n",
            opts);
        wf.run();
    }
    EXPECT_GT(counter_total("flexpath.replay_suppressed") - suppressed0, 0.0);

    // Reference: the same workflow end-to-end with no faults and no log.
    {
        fp::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(
            fabric,
            sim + mid + "aprun -n 1 histogram radii.fp radii 8 " + ref +
                " &\nwait\n",
            fp::StreamOptions(8));
        wf.run();
    }
    const std::string got = slurp(hist);
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got, slurp(ref)) << "cold restart diverged from the clean run";
}

TEST_F(DurableTest, ColdRestartNeverDuplicatesSinkRows) {
    // The sink is present in run 1 and writes some rows before the crash.
    // If the crash lands between a file write and the input step's ack, the
    // replay is at-least-once: the restarted sink must *skip* the rows its
    // previous incarnation already wrote instead of appending duplicates.
    sb::sim::register_simulations();
    const fs::path dir = scratch("sb_durable_dedup");
    const std::string hist = ::testing::TempDir() + "/sb_durable_dedup_hist.txt";
    const std::string ref = ::testing::TempDir() + "/sb_durable_dedup_ref.txt";
    fs::remove(hist);
    fs::remove(ref);
    const auto script = [](const std::string& out) {
        return std::string("aprun -n 1 gromacs atoms=64 steps=4 substeps=3 &\n") +
               "aprun -n 1 magnitude gmx.fp coords radii.fp radii &\n" +
               "aprun -n 1 histogram radii.fp radii 8 " + out + " &\nwait\n";
    };

    fp::StreamOptions opts(8);
    opts.durable.dir = dir.string();
    opts.durable.mode = d::Mode::On;

    ft::Registry::global().arm(ft::parse_spec("component.step:magnitude=crash@3"));
    {
        fp::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(fabric, script(hist), opts);
        EXPECT_THROW(wf.run(), std::exception);
    }
    ft::Registry::global().disarm_all();
    const std::string partial = slurp(hist);
    EXPECT_FALSE(partial.empty()) << "run 1 should have written rows pre-crash";

    {
        fp::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(fabric, script(hist), opts);
        wf.run();
    }
    {
        fp::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(fabric, script(ref),
                                                         fp::StreamOptions(8));
        wf.run();
    }
    EXPECT_EQ(slurp(hist), slurp(ref))
        << "restart duplicated or dropped sink rows";
}

// ---- kill -9 mid-run -------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SB_DURABLE_NO_FORK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SB_DURABLE_NO_FORK 1
#endif
#endif

TEST_F(DurableTest, SigkillAfterFsyncedAppendsRecoversEveryStep) {
#ifdef SB_DURABLE_NO_FORK
    GTEST_SKIP() << "fork-based kill test disabled under sanitizers";
#else
    const fs::path dir = scratch("sb_durable_kill");
    d::Options o = log_opts(dir);
    o.fsync = d::FsyncPolicy::Commit;

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: append three fsync'd steps, then die like a power cut —
        // no destructors, no flush, no atexit.
        d::Log log("killed", o);
        for (std::uint64_t t = 0; t < 3; ++t) {
            log.append_step(t, 1, bytes_of("m"),
                            payload_of("p" + std::to_string(t)));
        }
        ::raise(SIGKILL);
        ::_exit(127);  // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    d::Options ro = o;
    ro.replay_history = true;
    d::Log log("killed", ro);
    EXPECT_EQ(log.recovery().steps_recovered, 3u);
    EXPECT_EQ(log.recovery().steps_quarantined, 0u);
    for (std::uint64_t t = 0; t < 3; ++t) {
        EXPECT_EQ(str_of(log.load_step(t).payload), "p" + std::to_string(t));
    }
#endif
}
