// Unit and property tests for shapes, boxes, hyperslab copies, and
// partitioning — the geometry underneath the FlexPath MxN redistribution.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <span>

#include "util/ndarray.hpp"

namespace u = sb::util;

TEST(NdShape, VolumeAndStrides) {
    const u::NdShape s{4, 3, 5};
    EXPECT_EQ(s.ndim(), 3u);
    EXPECT_EQ(s.volume(), 60u);
    EXPECT_EQ(s.strides(), (std::vector<std::uint64_t>{15, 5, 1}));
}

TEST(NdShape, ScalarShape) {
    const u::NdShape s{};
    EXPECT_EQ(s.ndim(), 0u);
    EXPECT_EQ(s.volume(), 1u);
    EXPECT_TRUE(s.strides().empty());
}

TEST(NdShape, ZeroExtentDimension) {
    const u::NdShape s{4, 0, 5};
    EXPECT_EQ(s.volume(), 0u);
}

TEST(NdShape, LinearIndexMatchesStrides) {
    const u::NdShape s{3, 4, 5};
    const auto strides = s.strides();
    for (std::uint64_t i = 0; i < 3; ++i) {
        for (std::uint64_t j = 0; j < 4; ++j) {
            for (std::uint64_t k = 0; k < 5; ++k) {
                const std::uint64_t idx[] = {i, j, k};
                EXPECT_EQ(s.linear_index(idx),
                          i * strides[0] + j * strides[1] + k * strides[2]);
            }
        }
    }
}

TEST(NdShape, LinearIndexRankMismatchThrows) {
    const u::NdShape s{3, 4};
    const std::uint64_t idx[] = {1, 2, 3};
    EXPECT_THROW((void)s.linear_index(idx), std::invalid_argument);
}

TEST(NdShape, ToString) {
    EXPECT_EQ((u::NdShape{3, 4}).to_string(), "(3,4)");
    EXPECT_EQ(u::NdShape{}.to_string(), "()");
}

TEST(Box, WholeCoversShape) {
    const u::NdShape s{7, 2};
    const u::Box b = u::Box::whole(s);
    EXPECT_EQ(b.offset, (std::vector<std::uint64_t>{0, 0}));
    EXPECT_EQ(b.count, (std::vector<std::uint64_t>{7, 2}));
    EXPECT_TRUE(b.within(s));
    EXPECT_EQ(b.volume(), 14u);
}

TEST(Box, WithinChecksUpperBound) {
    const u::NdShape s{10, 10};
    EXPECT_TRUE(u::Box({5, 5}, {5, 5}).within(s));
    EXPECT_FALSE(u::Box({5, 5}, {6, 5}).within(s));
    EXPECT_FALSE(u::Box({0}, {1}).within(s));  // rank mismatch
}

TEST(Box, EmptyBox) {
    EXPECT_TRUE(u::Box({0, 0}, {0, 3}).empty());
    EXPECT_FALSE(u::Box({0, 0}, {1, 3}).empty());
    // A 0-d box is the scalar box: one element, not empty.
    EXPECT_FALSE(u::Box{}.empty());
    EXPECT_EQ(u::Box{}.volume(), 1u);
}

TEST(Intersect, Disjoint) {
    EXPECT_FALSE(u::intersect(u::Box({0}, {5}), u::Box({5}, {5})).has_value());
    EXPECT_FALSE(u::intersect(u::Box({0, 0}, {2, 2}), u::Box({2, 0}, {2, 2})));
}

TEST(Intersect, Nested) {
    const auto r = u::intersect(u::Box({0, 0}, {10, 10}), u::Box({3, 4}, {2, 2}));
    ASSERT_TRUE(r);
    EXPECT_EQ(*r, u::Box({3, 4}, {2, 2}));
}

TEST(Intersect, PartialOverlap) {
    const auto r = u::intersect(u::Box({0, 0}, {6, 6}), u::Box({4, 4}, {6, 6}));
    ASSERT_TRUE(r);
    EXPECT_EQ(*r, u::Box({4, 4}, {2, 2}));
}

TEST(Intersect, RankMismatchThrows) {
    EXPECT_THROW((void)u::intersect(u::Box({0}, {5}), u::Box({0, 0}, {5, 5})),
                 std::invalid_argument);
}

// Property: intersection is commutative and contained in both operands.
TEST(Intersect, CommutativeAndContained) {
    for (std::uint64_t ao = 0; ao < 6; ++ao) {
        for (std::uint64_t ac = 1; ac < 5; ++ac) {
            for (std::uint64_t bo = 0; bo < 6; ++bo) {
                for (std::uint64_t bc = 1; bc < 5; ++bc) {
                    const u::Box a({ao}, {ac}), b({bo}, {bc});
                    const auto ab = u::intersect(a, b);
                    const auto ba = u::intersect(b, a);
                    EXPECT_EQ(ab.has_value(), ba.has_value());
                    if (ab) {
                        EXPECT_EQ(*ab, *ba);
                        EXPECT_GE(ab->offset[0], std::max(ao, bo));
                        EXPECT_LE(ab->offset[0] + ab->count[0],
                                  std::min(ao + ac, bo + bc));
                    }
                }
            }
        }
    }
}

namespace {

std::vector<std::byte> make_pattern(const u::Box& box) {
    // Element value = its global linear coordinate hash, so misplaced copies
    // are always detected.
    std::vector<double> vals(box.volume());
    std::vector<std::uint64_t> idx(box.offset);
    for (std::size_t i = 0; i < vals.size(); ++i) {
        double v = 0.0;
        for (std::size_t d = 0; d < box.ndim(); ++d) {
            v = v * 1000.0 + static_cast<double>(idx[d]);
        }
        vals[i] = v;
        for (std::size_t d = box.ndim(); d-- > 0;) {
            if (++idx[d] < box.offset[d] + box.count[d]) break;
            idx[d] = box.offset[d];
            if (d == 0) break;
        }
    }
    std::vector<std::byte> out(vals.size() * sizeof(double));
    std::memcpy(out.data(), vals.data(), out.size());
    return out;
}

}  // namespace

TEST(CopyBox, IdentityCopy) {
    const u::Box box({2, 3}, {4, 5});
    const auto src = make_pattern(box);
    std::vector<std::byte> dst(src.size());
    u::copy_box(src, box, dst, box, box, sizeof(double));
    EXPECT_EQ(src, dst);
}

TEST(CopyBox, ScalarCopy) {
    const double v = 42.0;
    double w = 0.0;
    u::copy_box(std::as_bytes(std::span(&v, 1)), u::Box{},
                std::as_writable_bytes(std::span(&w, 1)), u::Box{}, u::Box{},
                sizeof(double));
    EXPECT_EQ(w, 42.0);
}

// Property: copying every region of a 2-D array between differently-offset
// slabs lands each element at its correct global coordinate.
TEST(CopyBox, AllRegions2D) {
    const u::Box src_box({1, 2}, {5, 6});
    const u::Box dst_box({0, 0}, {8, 9});
    const auto src = make_pattern(src_box);
    for (std::uint64_t ro = 1; ro < 5; ++ro) {
        for (std::uint64_t co = 2; co < 7; ++co) {
            for (std::uint64_t rc = 1; rc <= 6 - ro; ++rc) {
                for (std::uint64_t cc = 1; cc <= 8 - co; ++cc) {
                    const u::Box region({ro, co}, {rc, cc});
                    std::vector<std::byte> dst(dst_box.volume() * sizeof(double),
                                               std::byte{0});
                    u::copy_box(src, src_box, dst, dst_box, region, sizeof(double));
                    // Verify each element of the region.
                    for (std::uint64_t r = ro; r < ro + rc; ++r) {
                        for (std::uint64_t c = co; c < co + cc; ++c) {
                            double got;
                            const std::size_t off =
                                ((r - 0) * 9 + (c - 0)) * sizeof(double);
                            std::memcpy(&got, dst.data() + off, sizeof(double));
                            EXPECT_EQ(got, static_cast<double>(r * 1000 + c));
                        }
                    }
                }
            }
        }
    }
}

TEST(CopyBox, ThreeDimensional) {
    const u::Box src_box({0, 0, 0}, {3, 4, 5});
    const u::Box dst_box({1, 1, 1}, {2, 3, 4});
    const u::Box region({1, 1, 1}, {2, 3, 4});
    const auto src = make_pattern(src_box);
    std::vector<std::byte> dst(dst_box.volume() * sizeof(double));
    u::copy_box(src, src_box, dst, dst_box, region, sizeof(double));
    double got;
    std::memcpy(&got, dst.data(), sizeof(double));  // first element = (1,1,1)
    EXPECT_EQ(got, 1001001.0);
}

TEST(CopyBox, EmptyRegionIsNoop) {
    const u::Box box({0}, {4});
    const auto src = make_pattern(box);
    std::vector<std::byte> dst(src.size(), std::byte{7});
    u::copy_box(src, box, dst, box, u::Box({0}, {0}), sizeof(double));
    EXPECT_EQ(dst, std::vector<std::byte>(src.size(), std::byte{7}));
}

namespace {

// Element-at-a-time reference for copy_box: walks every global coordinate
// of the region and moves one element, deriving both slab offsets from
// first principles.  The production kernel collapses dimensions and steps
// offsets incrementally; any disagreement with this is a bug there.
void naive_copy_box(std::span<const std::byte> src, const u::Box& src_box,
                    std::span<std::byte> dst, const u::Box& dst_box,
                    const u::Box& region, std::size_t elem) {
    if (region.empty()) return;
    const std::size_t nd = region.ndim();
    if (nd == 0) {
        std::memcpy(dst.data(), src.data(), elem);
        return;
    }
    std::vector<std::uint64_t> g(region.offset);
    for (;;) {
        std::uint64_t soff = 0, doff = 0;
        for (std::size_t d = 0; d < nd; ++d) {
            soff = soff * src_box.count[d] + (g[d] - src_box.offset[d]);
            doff = doff * dst_box.count[d] + (g[d] - dst_box.offset[d]);
        }
        std::memcpy(dst.data() + doff * elem, src.data() + soff * elem, elem);
        std::size_t d = nd;
        for (;;) {
            if (d == 0) return;
            --d;
            if (++g[d] < region.offset[d] + region.count[d]) break;
            g[d] = region.offset[d];
        }
    }
}

struct CopyCase {
    u::Box src_box, dst_box, region;
};

// 0-d through 4-d, with unit-count dimensions, full-slab copies, and
// single-element regions.
std::vector<CopyCase> copy_cases() {
    return {
        // 0-d scalar
        {u::Box{}, u::Box{}, u::Box{}},
        // 1-d: interior region, single element, full slab
        {u::Box({2}, {7}), u::Box({0}, {12}), u::Box({4}, {3})},
        {u::Box({2}, {7}), u::Box({3}, {6}), u::Box({5}, {1})},
        {u::Box({4}, {6}), u::Box({4}, {6}), u::Box({4}, {6})},
        // 2-d: offset slabs, unit rows/cols, full slab
        {u::Box({1, 2}, {5, 6}), u::Box({0, 0}, {8, 9}), u::Box({2, 3}, {3, 4})},
        {u::Box({0, 0}, {4, 4}), u::Box({1, 1}, {3, 3}), u::Box({1, 1}, {1, 3})},
        {u::Box({0, 0}, {4, 4}), u::Box({1, 1}, {3, 3}), u::Box({1, 1}, {3, 1})},
        {u::Box({3, 3}, {2, 2}), u::Box({3, 3}, {2, 2}), u::Box({3, 3}, {2, 2})},
        {u::Box({0, 0}, {5, 5}), u::Box({2, 2}, {3, 3}), u::Box({2, 2}, {1, 1})},
        // 3-d: trailing dims full in both slabs (collapse), partial inner
        {u::Box({0, 0, 0}, {3, 4, 5}), u::Box({1, 1, 1}, {2, 3, 4}),
         u::Box({1, 1, 1}, {2, 3, 4})},
        {u::Box({0, 0, 0}, {4, 4, 4}), u::Box({0, 0, 0}, {4, 4, 4}),
         u::Box({1, 0, 0}, {2, 4, 4})},
        {u::Box({0, 0, 0}, {4, 4, 4}), u::Box({0, 2, 0}, {4, 2, 4}),
         u::Box({0, 2, 1}, {4, 2, 2})},
        {u::Box({0, 0, 0}, {2, 1, 3}), u::Box({0, 0, 0}, {2, 1, 3}),
         u::Box({0, 0, 0}, {2, 1, 3})},
        // 4-d: mixed full/partial/unit dimensions
        {u::Box({0, 0, 0, 0}, {3, 2, 4, 5}), u::Box({1, 0, 0, 0}, {2, 2, 4, 5}),
         u::Box({1, 0, 0, 0}, {2, 2, 4, 5})},
        {u::Box({0, 0, 0, 0}, {3, 3, 3, 3}), u::Box({0, 0, 0, 0}, {3, 3, 3, 3}),
         u::Box({1, 1, 1, 1}, {2, 1, 2, 1})},
        {u::Box({0, 1, 0, 2}, {2, 3, 2, 4}), u::Box({0, 0, 0, 0}, {4, 4, 4, 6}),
         u::Box({1, 2, 0, 3}, {1, 2, 2, 2})},
    };
}

}  // namespace

// Property: the dimension-collapsing kernel is byte-identical to the
// element-wise reference across ranks 0-4.
TEST(CopyBox, MatchesNaiveReference) {
    for (const CopyCase& c : copy_cases()) {
        const auto src = make_pattern(c.src_box);
        std::vector<std::byte> fast(c.dst_box.volume() * sizeof(double),
                                    std::byte{0});
        std::vector<std::byte> ref(fast.size(), std::byte{0});
        u::copy_box(src, c.src_box, fast, c.dst_box, c.region, sizeof(double));
        naive_copy_box(src, c.src_box, ref, c.dst_box, c.region, sizeof(double));
        EXPECT_EQ(fast, ref) << "src " << c.src_box.to_string() << " dst "
                             << c.dst_box.to_string() << " region "
                             << c.region.to_string();
    }
}

// Property: compiling a plan and replaying it equals the direct copy, and
// recompiling yields an identical plan (replay across steps is sound).
TEST(CopyPlan, CompileExecuteMatchesCopyBox) {
    for (const CopyCase& c : copy_cases()) {
        const auto src = make_pattern(c.src_box);
        std::vector<std::byte> direct(c.dst_box.volume() * sizeof(double),
                                      std::byte{0});
        std::vector<std::byte> replayed(direct.size(), std::byte{0});
        u::copy_box(src, c.src_box, direct, c.dst_box, c.region, sizeof(double));
        const u::CopyPlan plan =
            u::compile_copy_plan(c.src_box, c.dst_box, c.region, sizeof(double));
        u::execute_copy_plan(src, replayed, plan);
        EXPECT_EQ(direct, replayed);
        EXPECT_EQ(plan, u::compile_copy_plan(c.src_box, c.dst_box, c.region,
                                             sizeof(double)));
        std::uint64_t covered = 0;
        for (const u::CopyRun& r : plan) covered += r.length;
        EXPECT_EQ(covered, c.region.volume() * sizeof(double));
    }
}

// The collapse itself: full trailing dimensions merge into single memcpys.
TEST(CopyPlan, CollapsesContiguousTrailingDims) {
    const u::Box slab({0, 0, 0}, {4, 5, 6});
    // Whole-slab copy: one run of the full volume.
    const auto whole = u::compile_copy_plan(slab, slab, slab, 8);
    ASSERT_EQ(whole.size(), 1u);
    EXPECT_EQ(whole[0].length, 4u * 5 * 6 * 8);
    // Partial innermost dim: one run per (outer, middle) row.
    const auto rows =
        u::compile_copy_plan(slab, slab, u::Box({0, 0, 1}, {4, 5, 3}), 8);
    EXPECT_EQ(rows.size(), 4u * 5);
    EXPECT_EQ(rows[0].length, 3u * 8);
    // Full innermost, partial middle: the inner dim folds into the run and
    // the partial middle dim contributes as the outermost run factor.
    const auto planes =
        u::compile_copy_plan(slab, slab, u::Box({0, 1, 0}, {4, 3, 6}), 8);
    EXPECT_EQ(planes.size(), 4u);
    EXPECT_EQ(planes[0].length, 3u * 6 * 8);
    // Scalar: a single element-sized run.
    const auto scalar = u::compile_copy_plan(u::Box{}, u::Box{}, u::Box{}, 8);
    ASSERT_EQ(scalar.size(), 1u);
    EXPECT_EQ(scalar[0].length, 8u);
}

// ---- partitioning --------------------------------------------------------

class PartitionRange : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionRange, CoversExactlyOnceAndBalanced) {
    const auto [n_i, size] = GetParam();
    const std::uint64_t n = static_cast<std::uint64_t>(n_i);
    std::uint64_t covered = 0;
    std::uint64_t prev_end = 0;
    std::uint64_t minc = UINT64_MAX, maxc = 0;
    for (int r = 0; r < size; ++r) {
        const auto [off, cnt] = u::partition_range(n, r, size);
        EXPECT_EQ(off, prev_end);  // contiguous, ordered
        prev_end = off + cnt;
        covered += cnt;
        minc = std::min(minc, cnt);
        maxc = std::max(maxc, cnt);
    }
    EXPECT_EQ(covered, n);
    EXPECT_LE(maxc - minc, 1u);  // "approximately equal amount of data"
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionRange,
                         ::testing::Combine(::testing::Values(0, 1, 5, 16, 17, 100, 1023),
                                            ::testing::Values(1, 2, 3, 7, 16, 33)));

TEST(PartitionRange, BadArgsThrow) {
    EXPECT_THROW((void)u::partition_range(10, -1, 4), std::invalid_argument);
    EXPECT_THROW((void)u::partition_range(10, 4, 4), std::invalid_argument);
    EXPECT_THROW((void)u::partition_range(10, 0, 0), std::invalid_argument);
}

TEST(PartitionAlong, SlabsPartitionTheShape) {
    const u::NdShape s{10, 6, 4};
    for (std::size_t dim = 0; dim < 3; ++dim) {
        std::uint64_t total = 0;
        for (int r = 0; r < 4; ++r) {
            const u::Box b = u::partition_along(s, dim, r, 4);
            EXPECT_TRUE(b.within(s));
            total += b.volume();
            for (std::size_t d = 0; d < 3; ++d) {
                if (d != dim) {
                    EXPECT_EQ(b.offset[d], 0u);
                    EXPECT_EQ(b.count[d], s[d]);
                }
            }
        }
        EXPECT_EQ(total, s.volume());
    }
}

TEST(PartitionAlong, MoreRanksThanExtent) {
    const u::NdShape s{2, 8};
    int nonempty = 0;
    for (int r = 0; r < 5; ++r) {
        const u::Box b = u::partition_along(s, 0, r, 5);
        if (!b.empty()) ++nonempty;
    }
    EXPECT_EQ(nonempty, 2);
}

TEST(PartitionAlong, BadDimThrows) {
    EXPECT_THROW((void)u::partition_along(u::NdShape{4}, 1, 0, 2),
                 std::invalid_argument);
}
