// Tests for graph-level operator fusion (core/fusion.hpp) and the
// schedule-separated kernels behind it (core/kernels.hpp): planner legality,
// fused-vs-unfused bit-identity on the paper's chains, restart-under-fault
// bit-identity, per-stage observability attribution, and the kernel
// bit-identity contract across Scalar/Simd schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "core/fusion.hpp"
#include "core/histogram.hpp"
#include "core/kernels.hpp"
#include "core/launch_script.hpp"
#include "core/workflow.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/source_component.hpp"

namespace core = sb::core;
namespace kn = sb::core::kernels;
namespace sim = sb::sim;
namespace fp = sb::flexpath;
namespace u = sb::util;
namespace ft = sb::fault;

namespace {

std::string tmp(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

double counter_total(const std::string& name) {
    return sb::obs::Registry::global().total(name);
}

/// Builds one planner candidate with explicitly spelled ports, so legality
/// negatives (fan-out, mismatched arrays, opaque components) can be
/// constructed without registering bespoke components.
core::FusionCandidate cand(const std::string& component, int nprocs,
                           const std::string& argline,
                           std::vector<std::string> inputs,
                           std::vector<std::string> outputs, bool known = true) {
    core::FusionCandidate c;
    c.component = component;
    c.nprocs = nprocs;
    c.args = u::ArgList::split(argline);
    c.ports = core::Ports{std::move(inputs), std::move(outputs), known};
    return c;
}

/// The Fig. 6 analysis pipeline with uniform rank counts, so every link is
/// fusible: select -> dim-reduce -> dim-reduce -> histogram.
std::vector<core::FusionCandidate> gtcp_chain_candidates() {
    return {
        cand("gtcp", 4, "slices=4 gridpoints=18 steps=2", {}, {"gtcp.fp"}),
        cand("select", 2, "gtcp.fp field3d 2 psel.fp pp perpendicular_pressure",
             {"gtcp.fp"}, {"psel.fp"}),
        cand("dim-reduce", 2, "psel.fp pp 2 1 pflat1.fp pp1", {"psel.fp"},
             {"pflat1.fp"}),
        cand("dim-reduce", 2, "pflat1.fp pp1 0 1 pflat2.fp pp2", {"pflat1.fp"},
             {"pflat2.fp"}),
        cand("histogram", 2, "pflat2.fp pp2 12 out.txt", {"pflat2.fp"}, {}),
    };
}

/// Per-test hygiene: injected fault schedules and schedule overrides are
/// process-wide, so never let one leak into the next case.
class FusionTest : public ::testing::Test {
protected:
    void TearDown() override {
        ft::Registry::global().disarm_all();
        kn::set_schedule(std::nullopt);
    }
};

}  // namespace

// ---- planner legality ------------------------------------------------------

TEST_F(FusionTest, PlannerFusesTheMaximalChain) {
    const auto plan = core::plan_fusion(gtcp_chain_candidates());
    ASSERT_EQ(plan.chains.size(), 1u);
    const core::FusedChain& chain = plan.chains[0];
    ASSERT_EQ(chain.stages.size(), 4u);
    using K = core::FusedStage::Kind;
    EXPECT_EQ(chain.stages[0].kind, K::Select);
    EXPECT_EQ(chain.stages[1].kind, K::DimReduce);
    EXPECT_EQ(chain.stages[2].kind, K::DimReduce);
    EXPECT_EQ(chain.stages[3].kind, K::Histogram);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(chain.stages[i].instance, i + 1);
    EXPECT_FALSE(plan.fused(0));  // the simulation never fuses
    EXPECT_EQ(plan.chain_of(2), 0u);
    EXPECT_FALSE(chain.tail_writes_stream());
}

TEST_F(FusionTest, PlannerSplitsOnRankCountMismatch) {
    auto cands = gtcp_chain_candidates();
    cands[2].nprocs = 3;  // first dim-reduce runs 3 ranks, neighbours run 2
    const auto plan = core::plan_fusion(cands);
    // select | dim-reduce (3) | dim-reduce -> histogram: only the tail pair
    // is left fusible.
    ASSERT_EQ(plan.chains.size(), 1u);
    EXPECT_EQ(plan.chains[0].stages.size(), 2u);
    EXPECT_EQ(plan.chains[0].head().instance, 3u);
    EXPECT_FALSE(plan.fused(1));
    EXPECT_FALSE(plan.fused(2));
    bool noted = false;
    for (const auto& n : plan.notes) {
        noted = noted || n.find("ranks re-distribute") != std::string::npos;
    }
    EXPECT_TRUE(noted) << "expected a rank-count-mismatch note";
}

TEST_F(FusionTest, PlannerKeepsDurableHistoryStreamsMaterialized) {
    // A barrier stream (one whose durable log already has on-disk history)
    // splits the chain at exactly that link: the stream must exist at
    // runtime so cold-restarted / late-joining readers can replay it.
    const auto cands = gtcp_chain_candidates();
    const auto plan = core::plan_fusion(cands, {"pflat1.fp"});
    // select -> dim-reduce | pflat1.fp | dim-reduce -> histogram.
    ASSERT_EQ(plan.chains.size(), 2u);
    EXPECT_EQ(plan.chains[0].stages.size(), 2u);
    EXPECT_EQ(plan.chains[1].stages.size(), 2u);
    EXPECT_EQ(plan.chains[0].tail().out_stream, "pflat1.fp");
    EXPECT_EQ(plan.chains[1].head().in_stream, "pflat1.fp");
    bool noted = false;
    for (const auto& n : plan.notes) {
        noted = noted || n.find("durable history to replay") != std::string::npos;
    }
    EXPECT_TRUE(noted) << "expected a durable-history barrier note";
}

TEST_F(FusionTest, PlannerTreatsFanOutAsABoundary) {
    // magnitude's stream has two readers: fusing it into either would
    // starve the other.
    const auto plan = core::plan_fusion({
        cand("magnitude", 2, "in.fp v m.fp mag", {"in.fp"}, {"m.fp"}),
        cand("histogram", 2, "m.fp mag 8 h.txt", {"m.fp"}, {}),
        cand("moments", 2, "m.fp mag mom.txt", {"m.fp"}, {}),
    });
    EXPECT_TRUE(plan.chains.empty());
}

TEST_F(FusionTest, PlannerRequiresTheArraysToLineUp) {
    // Same stream, but the reader wants an array the writer never produces:
    // the hop still re-materializes through the stream.
    const auto plan = core::plan_fusion({
        cand("magnitude", 2, "in.fp v m.fp mag", {"in.fp"}, {"m.fp"}),
        cand("histogram", 2, "m.fp other 8 h.txt", {"m.fp"}, {}),
    });
    EXPECT_TRUE(plan.chains.empty());
}

TEST_F(FusionTest, PlannerWithOpaquePortsDisablesFusionOutright) {
    // A component that cannot statically name its streams could read any of
    // them, so single-reader can never be proven for any link.
    const auto plan = core::plan_fusion({
        cand("magnitude", 2, "in.fp v m.fp mag", {"in.fp"}, {"m.fp"}),
        cand("histogram", 2, "m.fp mag 8 h.txt", {"m.fp"}, {}),
        cand("mystery", 1, "", {}, {}, /*known=*/false),
    });
    EXPECT_TRUE(plan.chains.empty());
    EXPECT_FALSE(plan.notes.empty());
}

TEST_F(FusionTest, PlannerOnlyTailsMomentsAfterAllMagnitudeStages) {
    // Moments' floating-point sums are partition-order-sensitive; only an
    // all-Magnitude prefix preserves the partitioning it would have seen.
    const auto after_select = core::plan_fusion({
        cand("select", 2, "in.fp a 1 s.fp b x", {"in.fp"}, {"s.fp"}),
        cand("moments", 2, "s.fp b mom.txt", {"s.fp"}, {}),
    });
    EXPECT_TRUE(after_select.chains.empty());

    const auto after_magnitude = core::plan_fusion({
        cand("magnitude", 2, "in.fp v m.fp mag", {"in.fp"}, {"m.fp"}),
        cand("moments", 2, "m.fp mag mom.txt", {"m.fp"}, {}),
    });
    ASSERT_EQ(after_magnitude.chains.size(), 1u);
    EXPECT_EQ(after_magnitude.chains[0].tail().kind,
              core::FusedStage::Kind::Moments);
}

TEST_F(FusionTest, PlannerFusesThresholdAndDownsampleMidChain) {
    const auto plan = core::plan_fusion({
        cand("threshold", 2, "in.fp v above 0.5 t.fp tv", {"in.fp"}, {"t.fp"}),
        cand("downsample", 2, "t.fp tv 0 3 d.fp dv", {"t.fp"}, {"d.fp"}),
        cand("histogram", 2, "d.fp dv 8 h.txt", {"d.fp"}, {}),
    });
    ASSERT_EQ(plan.chains.size(), 1u);
    EXPECT_EQ(plan.chains[0].stages.size(), 3u);
    EXPECT_TRUE(plan.chains[0].tail_writes_stream() == false);
}

TEST_F(FusionTest, PlannerLeavesMalformedStagesToFailStandalone) {
    // stride == 0 is a runtime ArgError; the planner must not fuse the stage
    // (the standalone run then raises the seed's error text).
    const auto plan = core::plan_fusion({
        cand("threshold", 2, "in.fp v above 0.5 t.fp tv", {"in.fp"}, {"t.fp"}),
        cand("downsample", 2, "t.fp tv 0 0 d.fp dv", {"t.fp"}, {"d.fp"}),
        cand("histogram", 2, "d.fp dv 8 h.txt", {"d.fp"}, {}),
    });
    EXPECT_TRUE(plan.chains.empty());
}

TEST_F(FusionTest, ModeGatesResolveIndependentlyOfTheEnvironment) {
    EXPECT_TRUE(core::fusion_enabled(core::FusionMode::On));
    EXPECT_FALSE(core::fusion_enabled(core::FusionMode::Off));
}

TEST_F(FusionTest, WorkflowFusionPlanHonoursTheModeKnob) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=8", "steps=1"});
    wf.add("magnitude", 2, {"gmx.fp", "coords", "radii.fp", "radii"});
    wf.add("histogram", 2, {"radii.fp", "radii", "8", tmp("plan_knob.txt")});

    wf.set_fusion(core::FusionMode::On);
    const auto on = wf.fusion_plan();
    ASSERT_EQ(on.chains.size(), 1u);
    EXPECT_EQ(on.chains[0].stages.size(), 2u);
    EXPECT_TRUE(on.fused(1));
    EXPECT_TRUE(on.fused(2));

    wf.set_fusion(core::FusionMode::Off);
    EXPECT_TRUE(wf.fusion_plan().chains.empty());
}

// ---- fused vs. unfused bit-identity ----------------------------------------

namespace {

/// Runs the Fig. 6 pipeline (uniform analysis ranks so the whole chain
/// fuses) and returns the histogram file's raw bytes.
std::string run_gtcp_chain(core::FusionMode mode, const std::string& sim_args,
                           const std::string& hist_file) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 2 gtcp " + sim_args + " &\n"
        "aprun -n 2 select gtcp.fp field3d 2 psel.fp pp perpendicular_pressure &\n"
        "aprun -n 2 dim-reduce psel.fp pp 2 1 pflat1.fp pp1 &\n"
        "aprun -n 2 dim-reduce pflat1.fp pp1 0 1 pflat2.fp pp2 &\n"
        "aprun -n 2 histogram pflat2.fp pp2 12 " + hist_file + " &\n"
        "wait\n");
    wf.set_fusion(mode);
    wf.run();
    return slurp(hist_file);
}

}  // namespace

TEST_F(FusionTest, GtcpChainFusedOutputIsBitIdentical) {
    const std::string sim_args = "slices=4 gridpoints=18 steps=2";
    const std::string off = run_gtcp_chain(core::FusionMode::Off, sim_args,
                                           tmp("fuse_gtcp_off.txt"));
    const std::string on = run_gtcp_chain(core::FusionMode::On, sim_args,
                                          tmp("fuse_gtcp_on.txt"));
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
    // Sanity: the fused file still parses as per-step histograms.
    EXPECT_EQ(core::read_histogram_file(tmp("fuse_gtcp_on.txt")).size(), 2u);
}

// field3d is [slices, gridpoints, 7]; with slices > gridpoints the fused
// select partitions dimension 0, so the second dim-reduce (removing
// dimension 0) must take the allgather fallback the stream used to provide.
TEST_F(FusionTest, GtcpChainGatherFallbackStaysBitIdentical) {
    const std::string sim_args = "slices=12 gridpoints=5 steps=2";
    const std::string off = run_gtcp_chain(core::FusionMode::Off, sim_args,
                                           tmp("fuse_gather_off.txt"));
    const double gathers0 = counter_total("fusion.gather_fallbacks");
    const std::string on = run_gtcp_chain(core::FusionMode::On, sim_args,
                                          tmp("fuse_gather_on.txt"));
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
    EXPECT_GT(counter_total("fusion.gather_fallbacks") - gathers0, 0.0);
}

TEST_F(FusionTest, GromacsMagnitudeHistogramFusedOutputIsBitIdentical) {
    sim::register_simulations();
    const std::string sim_args = "atoms=64 steps=3 substeps=3";
    auto run = [&](core::FusionMode mode, const std::string& file) {
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 gromacs " + sim_args + " &\n"
            "aprun -n 3 magnitude gmx.fp coords radii.fp radii &\n"
            "aprun -n 3 histogram radii.fp radii 10 " + file + " &\n"
            "wait\n");
        wf.set_fusion(mode);
        wf.run();
        return slurp(file);
    };
    const std::string off = run(core::FusionMode::Off, tmp("fuse_gmx_off.txt"));
    const std::string on = run(core::FusionMode::On, tmp("fuse_gmx_on.txt"));
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

TEST_F(FusionTest, ThresholdChainFusedOutputIsBitIdentical) {
    sim::register_simulations();
    auto run = [&](core::FusionMode mode, const std::string& file) {
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 gromacs atoms=48 steps=3 substeps=2 &\n"
            "aprun -n 3 magnitude gmx.fp coords radii.fp radii &\n"
            "aprun -n 3 threshold radii.fp radii above 0.4 big.fp big &\n"
            "aprun -n 3 histogram big.fp big 9 " + file + " &\n"
            "wait\n");
        wf.set_fusion(mode);
        wf.run();
        return slurp(file);
    };
    const std::string off = run(core::FusionMode::Off, tmp("fuse_thr_off.txt"));
    const std::string on = run(core::FusionMode::On, tmp("fuse_thr_on.txt"));
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

TEST_F(FusionTest, DownsampleChainFusedOutputIsBitIdentical) {
    sim::register_simulations();
    auto run = [&](core::FusionMode mode, const std::string& file) {
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 gromacs atoms=60 steps=2 substeps=2 &\n"
            "aprun -n 2 magnitude gmx.fp coords radii.fp radii &\n"
            "aprun -n 2 downsample radii.fp radii 0 3 ds.fp dsr &\n"
            "aprun -n 2 histogram ds.fp dsr 7 " + file + " &\n"
            "wait\n");
        wf.set_fusion(mode);
        wf.run();
        return slurp(file);
    };
    const std::string off = run(core::FusionMode::Off, tmp("fuse_ds_off.txt"));
    const std::string on = run(core::FusionMode::On, tmp("fuse_ds_on.txt"));
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

TEST_F(FusionTest, MomentsChainFusedOutputIsBitIdentical) {
    sim::register_simulations();
    auto run = [&](core::FusionMode mode, const std::string& file) {
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 gromacs atoms=32 steps=3 substeps=2 &\n"
            "aprun -n 2 magnitude gmx.fp coords radii.fp radii &\n"
            "aprun -n 2 moments radii.fp radii " + file + " &\n"
            "wait\n");
        wf.set_fusion(mode);
        wf.run();
        return slurp(file);
    };
    const std::string off = run(core::FusionMode::Off, tmp("fuse_mom_off.txt"));
    const std::string on = run(core::FusionMode::On, tmp("fuse_mom_on.txt"));
    EXPECT_FALSE(on.empty());
    EXPECT_EQ(on, off);
}

// ---- restart under fault ----------------------------------------------------

// A stage inside a fused chain crashes mid-run; the supervisor restarts the
// whole fused unit, the head stream replays the un-acknowledged steps, and
// the tail file is bit-identical to a fault-free (unfused) run.
TEST_F(FusionTest, FusedChainRestartProducesBitIdenticalOutput) {
    sim::register_simulations();
    const std::string sim_args = "atoms=40 steps=4 substeps=2";

    const std::string ref_file = tmp("fuse_restart_ref.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("gromacs", 1, u::ArgList::split(sim_args).raw());
        wf.add("magnitude", 2, {"gmx.fp", "coords", "radiir.fp", "radii"});
        wf.add("histogram", 2, {"radiir.fp", "radii", "8", ref_file});
        wf.set_fusion(core::FusionMode::Off);
        wf.run();
    }

    // The magnitude stage's step-2 bookkeeping throws — inside the fused
    // unit, after two full steps reached the histogram file.
    ft::Registry::global().arm_from_env(
        "seed=7; component.step:magnitude=throw@2");
    const std::string out_file = tmp("fuse_restart_out.txt");
    const double restarts0 = counter_total("workflow.component_restarts");

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, u::ArgList::split(sim_args).raw());
    wf.add("magnitude", 2, {"gmx.fp", "coords", "radiir.fp", "radii"});
    wf.add("histogram", 2, {"radiir.fp", "radii", "8", out_file});
    wf.set_fusion(core::FusionMode::On);
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    ASSERT_EQ(wf.fusion_plan().chains.size(), 1u);
    wf.run();  // must complete despite the injected crash

    // Both members of the fused unit restarted together.
    EXPECT_EQ(wf.restarts(1), 1);
    EXPECT_EQ(wf.restarts(2), 1);
    EXPECT_EQ(counter_total("workflow.component_restarts") - restarts0, 2.0);
    EXPECT_EQ(slurp(out_file), slurp(ref_file));
}

// ---- observability attribution ---------------------------------------------

// Fused stages keep their original instance labels: StepStats fill per
// member, and critical-path attribution never names a synthetic fused unit.
TEST_F(FusionTest, FusedStagesKeepPerInstanceAttribution) {
    sim::register_simulations();
    sb::obs::set_enabled(true);

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=32", "steps=3", "substeps=2"});
    wf.add("magnitude", 2, {"gmx.fp", "coords", "radioo.fp", "radii"});
    wf.add("histogram", 2, {"radioo.fp", "radii", "8", tmp("fuse_obs.txt")});
    wf.set_fusion(core::FusionMode::On);
    wf.run();

    EXPECT_EQ(wf.stats(0).steps(), 3u);
    EXPECT_EQ(wf.stats(1).steps(), 3u);  // fused, still per-stage
    EXPECT_EQ(wf.stats(2).steps(), 3u);

    const auto summary = wf.critical_path();
    ASSERT_GT(summary.steps, 0u);
    for (const auto& inst : summary.by_instance) {
        EXPECT_TRUE(inst.instance == "gromacs#0" || inst.instance == "magnitude#1" ||
                    inst.instance == "histogram#2")
            << "unexpected critical-path actor: " << inst.instance;
    }
}

// ---- kernel schedules -------------------------------------------------------

namespace {

/// Deterministic pseudo-random doubles in [-1, 2), with a NaN sprinkled in
/// every 97th slot (histogram edge coverage).
std::vector<double> synth_values(std::size_t n) {
    std::vector<double> v(n);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        v[i] = static_cast<double>(state >> 11) /
                   static_cast<double>(1ull << 53) * 3.0 -
               1.0;
        if (i % 97 == 42) v[i] = std::numeric_limits<double>::quiet_NaN();
    }
    return v;
}

}  // namespace

TEST_F(FusionTest, HistogramEdgeSemanticsAreIdenticalAcrossSchedules) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<double> values = {nan, -inf, inf, 0.0, 1.0, 0.5, -3.0, 7.0};

    for (auto s : {kn::Schedule::Scalar, kn::Schedule::Simd}) {
        std::vector<std::uint64_t> counts(4, 0);
        kn::histogram_accumulate(values, 0.0, 1.0, counts, s);
        // NaN dropped; -inf, 0.0 and -3.0 clamp to bin 0; 0.5 in bin 2;
        // inf, 1.0 and 7.0 clamp to the last bin.
        EXPECT_EQ(counts, (std::vector<std::uint64_t>{3, 0, 1, 3}));

        std::vector<std::uint64_t> degenerate(4, 0);
        kn::histogram_accumulate(values, 2.0, 2.0, degenerate, s);
        EXPECT_EQ(degenerate, (std::vector<std::uint64_t>{7, 0, 0, 0}));

        std::vector<std::uint64_t> inverted(4, 0);
        kn::histogram_accumulate(values, 1.0, 0.0, inverted, s);
        EXPECT_EQ(inverted, (std::vector<std::uint64_t>{7, 0, 0, 0}));
    }

    EXPECT_THROW((void)core::histogram_counts(values, 0.0, 1.0, 0),
                 std::invalid_argument);
}

TEST_F(FusionTest, HistogramSchedulesMatchOnBulkData) {
    const auto values = synth_values(10240 + 7);  // off block-size multiples
    std::vector<std::uint64_t> scalar(17, 0), simd(17, 0);
    kn::histogram_accumulate(values, -0.5, 1.5, scalar, kn::Schedule::Scalar);
    kn::histogram_accumulate(values, -0.5, 1.5, simd, kn::Schedule::Simd);
    EXPECT_EQ(scalar, simd);
    std::uint64_t total = 0;
    for (auto c : simd) total += c;
    std::uint64_t non_nan = 0;
    for (double v : values) non_nan += std::isnan(v) ? 0 : 1;
    EXPECT_EQ(total, non_nan);  // NaNs dropped, everything else binned
}

TEST_F(FusionTest, MagnitudeSchedulesAreBitIdentical) {
    const std::size_t n = 1001, ncomp = 3;
    std::vector<double> vecs(n * ncomp);
    for (std::size_t i = 0; i < vecs.size(); ++i) {
        vecs[i] = std::sin(static_cast<double>(i) * 0.37) * 5.0;
    }
    std::vector<double> scalar(n), simd(n);
    kn::magnitude(vecs.data(), n, ncomp, scalar.data(), kn::Schedule::Scalar);
    kn::magnitude(vecs.data(), n, ncomp, simd.data(), kn::Schedule::Simd);
    EXPECT_EQ(0, std::memcmp(scalar.data(), simd.data(), n * sizeof(double)));
}

TEST_F(FusionTest, ThresholdCompactSchedulesAreBitIdentical) {
    const auto values = synth_values(4099);
    for (auto op : {kn::ThresholdOp::Above, kn::ThresholdOp::Below,
                    kn::ThresholdOp::Band}) {
        std::vector<double> scalar(values.size()), simd(values.size());
        const std::size_t ns = kn::threshold_compact(values, op, 0.25, 0.75,
                                                     scalar.data(),
                                                     kn::Schedule::Scalar);
        const std::size_t nv = kn::threshold_compact(values, op, 0.25, 0.75,
                                                     simd.data(),
                                                     kn::Schedule::Simd);
        ASSERT_EQ(ns, nv);
        EXPECT_EQ(0, std::memcmp(scalar.data(), simd.data(), ns * sizeof(double)));
        for (std::size_t i = 0; i < ns; ++i) EXPECT_FALSE(std::isnan(scalar[i]));
    }
}

TEST_F(FusionTest, MomentsSchedulesAgreeDeterministically) {
    const auto values = synth_values(8193);
    const auto scalar = kn::moments_accumulate(values, kn::Schedule::Scalar);
    const auto simd = kn::moments_accumulate(values, kn::Schedule::Simd);
    EXPECT_EQ(scalar.n, simd.n);    // integer-valued count: exact
    EXPECT_EQ(scalar.lo, simd.lo);  // min/max: exact
    EXPECT_EQ(scalar.hi, simd.hi);
    // Sums are reassociated under Simd: deterministic, ulp-level agreement.
    EXPECT_NEAR(scalar.s1, simd.s1, 1e-9 * std::abs(scalar.s1) + 1e-12);
    EXPECT_NEAR(scalar.s2, simd.s2, 1e-9 * std::abs(scalar.s2) + 1e-12);
    EXPECT_NEAR(scalar.s3, simd.s3, 1e-9 * std::abs(scalar.s3) + 1e-12);
    const auto again = kn::moments_accumulate(values, kn::Schedule::Simd);
    EXPECT_EQ(simd.s1, again.s1);  // deterministic across runs
}

TEST_F(FusionTest, ScatterStridedSchedulesAreBitIdentical) {
    const std::size_t n = 513, stride = 3;
    std::vector<double> src(n);
    for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<double>(i) * 1.5;
    std::vector<double> a(n * stride, -1.0), b(n * stride, -1.0);
    kn::scatter_strided(reinterpret_cast<const std::byte*>(src.data()),
                        reinterpret_cast<std::byte*>(a.data()), n, stride,
                        sizeof(double), kn::Schedule::Scalar);
    kn::scatter_strided(reinterpret_cast<const std::byte*>(src.data()),
                        reinterpret_cast<std::byte*>(b.data()), n, stride,
                        sizeof(double), kn::Schedule::Simd);
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}
