// Randomized pipeline fuzzing: build random chains of generic components
// with random shapes and process counts (deterministic per seed), run them
// through the real transport, and check the final data against a reference
// computed by applying the same operations sequentially with the library's
// unit-tested kernels.  This shakes out interactions no hand-written case
// covers: odd partitions, empty ranks, label/header propagation through
// deep chains, MxN redistribution after shape changes.
#include <gtest/gtest.h>

#include <mutex>
#include <numeric>
#include <thread>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "core/dim_reduce.hpp"
#include "core/reduce.hpp"
#include "core/registry.hpp"
#include "core/transpose.hpp"
#include "core/workflow.hpp"
#include "mpi/runtime.hpp"

namespace core = sb::core;
namespace fp = sb::flexpath;
namespace a = sb::adios;
namespace u = sb::util;

namespace {

/// SplitMix64: small deterministic PRNG (no std::random_device — the test
/// must reproduce exactly from its seed).
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed * 2654435769u + 1) {}
    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }
    int procs() { return 1 + static_cast<int>(below(3)); }

private:
    std::uint64_t state_;
};

/// The fuzzer's model of the data flowing through the pipeline.
struct Model {
    u::NdShape shape;
    std::vector<double> data;
    std::vector<std::string> labels;
    std::map<std::size_t, std::vector<std::string>> headers;  // dim -> names
};

/// One pipeline stage: the launch-script line plus the model transition.
struct Stage {
    std::string component;
    int nprocs;
    std::vector<std::string> args;
};

std::string arr_name(std::size_t i) { return "arr" + std::to_string(i); }
std::string stream_name(std::size_t i) { return "fuzz" + std::to_string(i) + ".fp"; }

/// Applies one random compatible operation to the model and returns the
/// corresponding stage, or nullopt if no operation fits.
std::optional<Stage> random_stage(Rng& rng, Model& m, std::size_t idx) {
    const std::string in_s = stream_name(idx), in_a = arr_name(idx);
    const std::string out_s = stream_name(idx + 1), out_a = arr_name(idx + 1);
    const std::size_t nd = m.shape.ndim();

    // Collect applicable ops.
    std::vector<int> ops;
    if (nd >= 2) {
        ops.push_back(0);  // transpose
        ops.push_back(1);  // dim-reduce
        ops.push_back(2);  // reduce(mean)
    }
    for (std::size_t d = 0; d < nd; ++d) {
        if (m.shape[d] >= 2) {
            ops.push_back(3);  // downsample
            break;
        }
    }
    if (!m.headers.empty()) ops.push_back(4);  // select
    if (ops.empty()) return std::nullopt;

    const int op = ops[rng.below(ops.size())];
    Stage st;
    st.nprocs = rng.procs();
    switch (op) {
        case 0: {  // transpose
            std::vector<std::size_t> perm(nd);
            std::iota(perm.begin(), perm.end(), 0u);
            for (std::size_t i = nd; i > 1; --i) {
                std::swap(perm[i - 1], perm[rng.below(i)]);
            }
            std::string perm_str;
            for (std::size_t p : perm) {
                perm_str += (perm_str.empty() ? "" : ",") + std::to_string(p);
            }
            st.component = "transpose";
            st.args = {in_s, in_a, perm_str, out_s, out_a};
            // Model transition.
            std::vector<double> out(m.data.size());
            core::transpose_copy(std::as_bytes(std::span(m.data)), m.shape, perm,
                                 std::as_writable_bytes(std::span(out)),
                                 sizeof(double));
            Model next;
            next.shape = core::transpose_shape(m.shape, perm);
            next.data = std::move(out);
            next.labels.resize(nd);
            for (std::size_t j = 0; j < nd; ++j) {
                next.labels[j] = m.labels[perm[j]];
                const auto it = m.headers.find(perm[j]);
                if (it != m.headers.end()) next.headers[j] = it->second;
            }
            m = std::move(next);
            return st;
        }
        case 1: {  // dim-reduce
            const std::size_t remove = rng.below(nd);
            std::size_t grow = rng.below(nd);
            while (grow == remove) grow = rng.below(nd);
            st.component = "dim-reduce";
            st.args = {in_s, in_a, std::to_string(remove), std::to_string(grow),
                       out_s, out_a};
            std::vector<double> out(m.data.size());
            core::dim_reduce_copy(std::as_bytes(std::span(m.data)), m.shape, remove,
                                  grow, std::as_writable_bytes(std::span(out)),
                                  sizeof(double));
            Model next;
            next.shape = core::dim_reduce_shape(m.shape, remove, grow);
            next.data = std::move(out);
            for (std::size_t d = 0, j = 0; d < nd; ++d) {
                if (d == remove) continue;
                next.labels.push_back(m.labels[d]);
                const auto it = m.headers.find(d);
                if (it != m.headers.end() && d != grow) next.headers[j] = it->second;
                ++j;
            }
            m = std::move(next);
            return st;
        }
        case 2: {  // reduce mean
            const std::size_t dim = rng.below(nd);
            st.component = "reduce";
            st.args = {in_s, in_a, std::to_string(dim), "mean", out_s, out_a};
            std::vector<double> out(m.data.size() / m.shape[dim]);
            core::reduce_copy(m.data, m.shape, dim, core::ReduceKind::Mean, out);
            Model next;
            std::vector<std::uint64_t> dims;
            for (std::size_t d = 0, j = 0; d < nd; ++d) {
                if (d == dim) continue;
                dims.push_back(m.shape[d]);
                next.labels.push_back(m.labels[d]);
                const auto it = m.headers.find(d);
                if (it != m.headers.end()) next.headers[j] = it->second;
                ++j;
            }
            next.shape = u::NdShape(dims);
            next.data = std::move(out);
            m = std::move(next);
            return st;
        }
        case 3: {  // downsample
            std::size_t dim = 0;
            for (std::size_t tries = 0; tries < 8; ++tries) {
                dim = rng.below(nd);
                if (m.shape[dim] >= 2) break;
            }
            if (m.shape[dim] < 2) return std::nullopt;
            const std::uint64_t stride = 2 + rng.below(2);
            st.component = "downsample";
            st.args = {in_s, in_a, std::to_string(dim), std::to_string(stride),
                       out_s, out_a};
            // Model: keep rows 0, stride, ... along dim.
            const std::uint64_t kept = (m.shape[dim] + stride - 1) / stride;
            u::NdShape out_shape = m.shape;
            out_shape[dim] = kept;
            std::vector<double> out(out_shape.volume());
            // Copy row by row through the box helper.
            for (std::uint64_t j = 0; j < kept; ++j) {
                u::Box src_row = u::Box::whole(m.shape);
                src_row.offset[dim] = j * stride;
                src_row.count[dim] = 1;
                u::Box dst_row = u::Box::whole(out_shape);
                dst_row.offset[dim] = j;
                dst_row.count[dim] = 1;
                // Extract then place (two copies through contiguous temp).
                std::vector<double> tmp(src_row.volume());
                u::copy_box(std::as_bytes(std::span(m.data)), u::Box::whole(m.shape),
                            std::as_writable_bytes(std::span(tmp)), src_row, src_row,
                            sizeof(double));
                u::copy_box(std::as_bytes(std::span(tmp)), dst_row,
                            std::as_writable_bytes(std::span(out)),
                            u::Box::whole(out_shape), dst_row, sizeof(double));
            }
            Model next;
            next.shape = out_shape;
            next.data = std::move(out);
            next.labels = m.labels;
            for (const auto& [d, names] : m.headers) {
                if (d != dim) {
                    next.headers[d] = names;
                } else {
                    std::vector<std::string> filtered;
                    for (std::uint64_t i = 0; i < names.size(); i += stride) {
                        filtered.push_back(names[i]);
                    }
                    next.headers[d] = filtered;
                }
            }
            m = std::move(next);
            return st;
        }
        case 4: {  // select
            const auto hit = std::next(m.headers.begin(),
                                       static_cast<std::ptrdiff_t>(
                                           rng.below(m.headers.size())));
            const std::size_t dim = hit->first;
            const auto& names = hit->second;
            // Choose a random non-empty subset *without replacement* (the
            // component resolves names by first match, so names must stay
            // unique for the model to agree), in random order.
            const std::size_t k = 1 + rng.below(names.size());
            std::vector<std::uint64_t> pool(names.size());
            std::iota(pool.begin(), pool.end(), 0u);
            for (std::size_t i = pool.size(); i > 1; --i) {
                std::swap(pool[i - 1], pool[rng.below(i)]);
            }
            std::vector<std::uint64_t> rows(pool.begin(),
                                            pool.begin() + static_cast<std::ptrdiff_t>(k));
            std::vector<std::string> chosen;
            for (const auto r : rows) chosen.push_back(names[r]);
            st.component = "select";
            st.args = {in_s, in_a, std::to_string(dim), out_s, out_a};
            for (const auto& c : chosen) st.args.push_back(c);

            u::NdShape out_shape = m.shape;
            out_shape[dim] = k;
            std::vector<double> out(out_shape.volume());
            for (std::size_t j = 0; j < k; ++j) {
                u::Box src_row = u::Box::whole(m.shape);
                src_row.offset[dim] = rows[j];
                src_row.count[dim] = 1;
                u::Box dst_row = u::Box::whole(out_shape);
                dst_row.offset[dim] = j;
                dst_row.count[dim] = 1;
                std::vector<double> tmp(src_row.volume());
                u::copy_box(std::as_bytes(std::span(m.data)), u::Box::whole(m.shape),
                            std::as_writable_bytes(std::span(tmp)), src_row, src_row,
                            sizeof(double));
                u::copy_box(std::as_bytes(std::span(tmp)), dst_row,
                            std::as_writable_bytes(std::span(out)),
                            u::Box::whole(out_shape), dst_row, sizeof(double));
            }
            Model next;
            next.shape = out_shape;
            next.data = std::move(out);
            next.labels = m.labels;
            for (const auto& [d, ns] : m.headers) {
                if (d != dim) next.headers[d] = ns;
            }
            next.headers[dim] = chosen;
            m = std::move(next);
            return st;
        }
    }
    return std::nullopt;
}

}  // namespace

class FuzzPipelines : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipelines, RandomChainMatchesReference) {
    Rng rng(GetParam());

    // Random 2-D or 3-D source with labelled dims + a header on the last.
    Model m;
    std::vector<std::uint64_t> dims;
    const std::size_t nd = 2 + rng.below(2);
    for (std::size_t d = 0; d + 1 < nd; ++d) dims.push_back(3 + rng.below(6));
    dims.push_back(2 + rng.below(4));  // last dim small (named quantities)
    m.shape = u::NdShape(dims);
    m.data.resize(m.shape.volume());
    for (std::size_t i = 0; i < m.data.size(); ++i) {
        m.data[i] = static_cast<double>(i) * 0.25 - 7.0;
    }
    for (std::size_t d = 0; d < nd; ++d) m.labels.push_back("L" + std::to_string(d));
    std::vector<std::string> names;
    for (std::uint64_t i = 0; i < m.shape[nd - 1]; ++i) {
        names.push_back("q" + std::to_string(i));
    }
    m.headers[nd - 1] = names;

    const Model source = m;

    // 2-5 random stages.
    std::vector<Stage> stages;
    const std::size_t want = 2 + rng.below(4);
    for (std::size_t i = 0; stages.size() < want && i < want + 4; ++i) {
        if (auto st = random_stage(rng, m, stages.size())) {
            stages.push_back(std::move(*st));
        }
    }
    ASSERT_FALSE(stages.empty());

    // Run the pipeline for real: publisher -> stages -> collector.
    fp::Fabric fabric;
    std::jthread publisher([&] {
        a::GroupDef def = core::output_group("fuzz-source", arr_name(0), source.labels);
        a::Writer w(fabric, stream_name(0), def, 0, 1);
        const auto& dim_names = def.find(arr_name(0))->dimensions;
        for (int t = 0; t < 2; ++t) {
            w.begin_step();
            for (std::size_t d = 0; d < source.shape.ndim(); ++d) {
                w.set_dimension(dim_names[d], source.shape[d]);
            }
            for (const auto& [d, ns] : source.headers) {
                w.write_attribute(core::header_attr_key(arr_name(0), d), ns);
            }
            w.write<double>(arr_name(0), source.data, u::Box::whole(source.shape));
            w.end_step();
        }
        w.close();
    });

    std::vector<std::jthread> workers;
    std::mutex err_mu;
    std::vector<std::string> worker_errors;
    for (const Stage& st : stages) {
        workers.emplace_back([&fabric, &err_mu, &worker_errors, st] {
            try {
                sb::mpi::run_ranks(st.nprocs, [&](sb::mpi::Communicator& c) {
                    auto comp = core::make_component(st.component);
                    core::RunContext ctx{fabric, c, nullptr, {}};
                    comp->run(ctx, u::ArgList(st.args));
                });
            } catch (const std::exception& e) {
                const std::lock_guard lock(err_mu);
                worker_errors.push_back(st.component + ": " + e.what());
                fabric.abort_all();
            }
        });
    }

    a::Reader r(fabric, stream_name(stages.size()), 0, 1);
    int steps = 0;
    while ([&] {
        try {
            return r.begin_step();
        } catch (const fp::StreamAborted&) {
            return false;
        }
    }()) {
        const a::VarInfo info = r.inq_var(arr_name(stages.size()));
        ASSERT_EQ(info.shape, m.shape) << "seed " << GetParam();
        const auto data = r.read<double>(arr_name(stages.size()),
                                         u::Box::whole(info.shape));
        ASSERT_EQ(data.size(), m.data.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
            ASSERT_DOUBLE_EQ(data[i], m.data[i])
                << "seed " << GetParam() << " element " << i;
        }
        // Headers survived the chain per the model.
        for (const auto& [d, ns] : m.headers) {
            const auto got = r.attribute_strings(
                core::header_attr_key(arr_name(stages.size()), d));
            ASSERT_TRUE(got.has_value()) << "seed " << GetParam() << " dim " << d;
            EXPECT_EQ(*got, ns) << "seed " << GetParam() << " dim " << d;
        }
        ++steps;
        r.end_step();
    }
    workers.clear();  // join before inspecting errors
    {
        const std::lock_guard lock(err_mu);
        ASSERT_TRUE(worker_errors.empty())
            << "seed " << GetParam() << ": " << worker_errors.front();
    }
    EXPECT_EQ(steps, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelines,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                           14, 15, 16));
