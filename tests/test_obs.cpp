// Tests for sb::obs: the instrument primitives, the registry, the trace
// log, and — through a real 2-writer/3-reader workflow — the end-to-end
// exporters (Workflow::write_trace / write_metrics).  The shared JSON
// parser (json_test_util.hpp) validates that the exported files are
// well-formed documents, not just grep-able text.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/workflow.hpp"
#include "flexpath/stream.hpp"
#include "json_test_util.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/source_component.hpp"

namespace obs = sb::obs;
using jsonutil::JsonParser;
using jsonutil::JsonValue;
using jsonutil::parse_json_file;

namespace {

// Re-enables metrics when a test that disables them exits (other tests in
// this binary rely on the instruments being live).
struct EnabledGuard {
    ~EnabledGuard() { obs::set_enabled(true); }
};

// ---- instrument primitives -------------------------------------------------

TEST(ObsCounter, AccumulatesAndResets) {
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, DisabledIsNoOp) {
    EnabledGuard guard;
    obs::Counter c;
    obs::set_enabled(false);
    c.add(5);
    EXPECT_EQ(c.value(), 0u);
    obs::set_enabled(true);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(ObsGauge, TracksHighWaterMark) {
    obs::Gauge g;
    g.set(3.0);
    g.set(7.0);
    g.set(2.0);
    EXPECT_EQ(g.value(), 2.0);
    EXPECT_EQ(g.high_water(), 7.0);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.high_water(), 0.0);
}

TEST(ObsHistogram, CountSumMinMax) {
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0.0);  // empty
    EXPECT_EQ(h.max(), 0.0);
    h.observe(0.5);
    h.observe(2.0);
    h.observe(0.25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 2.75);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(ObsHistogram, BucketIndexing) {
    using H = obs::Histogram;
    EXPECT_EQ(H::bucket_index(0.0), 0);    // underflow
    EXPECT_EQ(H::bucket_index(-1.0), 0);
    EXPECT_EQ(H::bucket_index(1.0), -H::kMinExp + 1);  // ilogb(1.0) == 0
    EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);  // overflow
    // Each finite bucket's upper bound contains values just below it.
    for (int i = 2; i < H::kBuckets - 1; ++i) {
        const double ub = H::bucket_upper_bound(i);
        EXPECT_EQ(H::bucket_index(std::nextafter(ub, 0.0)), i) << "bucket " << i;
        EXPECT_EQ(H::bucket_index(ub), i + 1) << "bucket " << i;
    }
}

TEST(ObsHistogram, ReservoirKeepsEarlySamples) {
    obs::Histogram h;
    for (int i = 1; i <= 10; ++i) h.observe(static_cast<double>(i));
    const auto samples = h.reservoir();
    ASSERT_EQ(samples.size(), 10u);
    EXPECT_EQ(samples.front(), 1.0);
    EXPECT_EQ(samples.back(), 10.0);
}

// Percentile correctness regression: the reservoir is a *uniform* sample of
// the whole observation sequence.  A keep-the-first-K reservoir fed a
// monotonically increasing series would report a median near kReservoir/2
// instead of N/2.
TEST(ObsHistogram, ReservoirIsUniformOverAscendingSeries) {
    obs::Histogram h;
    constexpr int kN = 20000;
    for (int i = 1; i <= kN; ++i) h.observe(static_cast<double>(i));
    std::vector<double> samples = h.reservoir();
    ASSERT_EQ(samples.size(), obs::Histogram::kReservoir);
    std::sort(samples.begin(), samples.end());
    const double median = samples[samples.size() / 2];
    EXPECT_GT(median, kN * 0.40) << "reservoir is biased toward early samples";
    EXPECT_LT(median, kN * 0.60) << "reservoir is biased toward late samples";
    // Both tails of the run are represented.
    EXPECT_LT(samples.front(), kN * 0.20);
    EXPECT_GT(samples.back(), kN * 0.80);
}

// ---- registry --------------------------------------------------------------

TEST(ObsRegistry, LabelsAddressDistinctInstruments) {
    auto& reg = obs::Registry::global();
    obs::Counter& a = reg.counter("test.labels", {{"stream", "a"}});
    obs::Counter& b = reg.counter("test.labels", {{"stream", "b"}});
    EXPECT_NE(&a, &b);
    // Label order is canonicalized: same set, same instrument.
    obs::Counter& c1 = reg.counter("test.two", {{"x", "1"}, {"y", "2"}});
    obs::Counter& c2 = reg.counter("test.two", {{"y", "2"}, {"x", "1"}});
    EXPECT_EQ(&c1, &c2);
}

TEST(ObsRegistry, ResetZeroesButKeepsIdentity) {
    auto& reg = obs::Registry::global();
    obs::Counter& c = reg.counter("test.reset");
    c.add(9);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(&reg.counter("test.reset"), &c);  // same instrument after reset
}

TEST(ObsRegistry, TotalSumsAcrossLabelSets) {
    auto& reg = obs::Registry::global();
    reg.counter("test.total", {{"s", "1"}}).add(2);
    reg.counter("test.total", {{"s", "2"}}).add(3);
    const double before = reg.total("test.total");
    reg.counter("test.total", {{"s", "1"}}).add(1);
    EXPECT_DOUBLE_EQ(reg.total("test.total") - before, 1.0);
    reg.histogram("test.total_h").observe(1.5);
    EXPECT_DOUBLE_EQ(reg.total("test.total_h"), 1.5);
}

TEST(ObsRegistry, SnapshotCarriesHistogramStats) {
    auto& reg = obs::Registry::global();
    obs::Histogram& h = reg.histogram("test.snap_h", {{"k", "v"}});
    h.reset();
    for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
    bool found = false;
    for (const auto& m : reg.snapshot()) {
        if (m.name != "test.snap_h") continue;
        found = true;
        EXPECT_EQ(m.type, obs::MetricSnapshot::Type::Histogram);
        ASSERT_EQ(m.labels.size(), 1u);
        EXPECT_EQ(m.labels[0].first, "k");
        EXPECT_EQ(m.count, 100u);
        EXPECT_DOUBLE_EQ(m.sum, 5050.0);
        EXPECT_DOUBLE_EQ(m.min, 1.0);
        EXPECT_DOUBLE_EQ(m.max, 100.0);
        EXPECT_NEAR(m.p50, 50.0, 2.0);
        EXPECT_NEAR(m.p95, 95.0, 2.0);
        EXPECT_FALSE(m.buckets.empty());
    }
    EXPECT_TRUE(found);
}

// All three observability sinks — registry instruments, the trace log, and
// the span store — are written from every component rank concurrently.
// Hammer them from N threads (TSan turns any missed synchronization in the
// hot paths into a hard failure) and check the totals are exact.
TEST(ObsRegistry, ConcurrentHammerAcrossSinks) {
    auto& reg = obs::Registry::global();
    auto& tl = obs::TraceLog::global();
    auto& spans = obs::SpanStore::global();
    obs::set_enabled(true);
    tl.clear();
    spans.clear();

    constexpr int kThreads = 8;
    constexpr int kIters = 2000;
    obs::Counter& shared = reg.counter("test.hammer.shared");
    shared.reset();
    reg.histogram("test.hammer.h").reset();
    const double epoch = obs::steady_seconds();

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const obs::ScopedActor actor("hammer#" + std::to_string(t));
            obs::Counter& mine =
                reg.counter("test.hammer.per", {{"t", std::to_string(t)}});
            obs::Histogram& h = reg.histogram("test.hammer.h");
            for (int i = 0; i < kIters; ++i) {
                shared.inc();
                mine.inc();
                h.observe(static_cast<double>(i));
                if (i % 256 == 0) {
                    const double now = obs::steady_seconds();
                    tl.counter("hammer depth", "hammer.fp", static_cast<double>(i));
                    spans.record("hammer.fp", static_cast<std::uint64_t>(i),
                                 obs::SegmentKind::Compute, now, now, t);
                }
                if (i % 512 == 0) (void)reg.snapshot();  // concurrent readers
            }
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(shared.value(), static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(reg.total("test.hammer.per"),
                     static_cast<double>(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("test.hammer.h").count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_GE(tl.events_after(epoch).size(), static_cast<std::size_t>(kThreads));
    // Every thread recorded step 0; the per-step segment list holds all 8.
    const auto timelines = spans.timelines("hammer.fp", epoch);
    ASSERT_FALSE(timelines.empty());
    EXPECT_EQ(timelines.front().step, 0u);
    EXPECT_EQ(timelines.front().segments.size(), static_cast<std::size_t>(kThreads));
    spans.clear();
}

// ---- json helpers ----------------------------------------------------------

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
    EXPECT_EQ(obs::json_escape("plain"), "plain");
    EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
    // Round-trips through the test parser.
    const std::string doc = "\"" + obs::json_escape("x\"\\\n\t\x02y") + "\"";
    const JsonValue v = JsonParser(doc).parse();
    EXPECT_EQ(v.str, "x\"\\\n\t\x02y");
}

TEST(ObsJson, NumbersAreAlwaysValidJson) {
    EXPECT_EQ(obs::json_number(0.0), "0");
    EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(obs::json_number(std::nan("")), "0");
    const double v = 0.1234567890123;
    EXPECT_DOUBLE_EQ(std::stod(obs::json_number(v)), v);
}

// The exporter must stay valid JSON no matter what ends up in metric names
// and label values — stream names come from user launch scripts and can
// carry quotes, backslashes, newlines, and control bytes.
TEST(ObsJson, PathologicalMetricNamesRoundTripThroughExporter) {
    auto& reg = obs::Registry::global();
    const std::string name = "test.patho.\"quoted\"\\back\nslash";
    const std::string label_val = "a\"b\\c\nd\te\x01f";
    reg.counter(name, {{"stream", label_val}}).add(7);
    reg.gauge("test.patho.gauge", {{"k\"ey", "v\\al"}}).set(1.5);

    std::ostringstream os;
    obs::write_metrics_json(os, reg.snapshot());
    const JsonValue doc = JsonParser(os.str()).parse();  // throws if malformed
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    bool found = false;
    for (const JsonValue& m : metrics->arr) {
        const JsonValue* n = m.find("name");
        ASSERT_NE(n, nullptr);
        if (n->str != name) continue;
        found = true;
        const JsonValue* labels = m.find("labels");
        ASSERT_NE(labels, nullptr);
        ASSERT_NE(labels->find("stream"), nullptr);
        EXPECT_EQ(labels->find("stream")->str, label_val);
        EXPECT_EQ(m.find("value")->number, 7.0);
    }
    EXPECT_TRUE(found) << "pathological name lost in export";

    // The aligned table must not crash on them either.
    const std::string table = obs::format_metrics_table(reg.snapshot());
    EXPECT_NE(table.find("test.patho."), std::string::npos);
}

// ---- trace log -------------------------------------------------------------

TEST(ObsTraceLog, RecordsAndFiltersByEpoch) {
    auto& tl = obs::TraceLog::global();
    tl.clear();
    const double epoch = obs::steady_seconds();
    tl.counter("queue depth", "s1", 2.0);
    tl.slice("backpressure", "s1", "backpressure", epoch, epoch + 0.001);
    const auto all = tl.events_after(epoch);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].kind, obs::TraceEvent::Kind::Counter);
    EXPECT_EQ(all[0].stream, "s1");
    EXPECT_EQ(all[1].kind, obs::TraceEvent::Kind::Slice);
    EXPECT_EQ(all[1].category, "backpressure");
    // A later epoch filters everything out.
    EXPECT_TRUE(tl.events_after(obs::steady_seconds() + 1.0).empty());
    tl.clear();
    EXPECT_TRUE(tl.events_after(0.0).empty());
}

TEST(ObsTraceLog, DisabledRecordsNothing) {
    EnabledGuard guard;
    auto& tl = obs::TraceLog::global();
    tl.clear();
    obs::set_enabled(false);
    tl.counter("queue depth", "s1", 1.0);
    tl.slice("backpressure", "s1", "backpressure", 0.0, 1.0);
    EXPECT_TRUE(tl.events_after(0.0).empty());
}

// ---- end-to-end export -----------------------------------------------------

TEST(ObsExport, RendezvousStreamsShowBackpressureAndTraceStalls) {
    sb::sim::register_simulations();
    obs::set_enabled(true);
    obs::TraceLog::global().clear();
    auto& reg = obs::Registry::global();

    sb::flexpath::Fabric fabric;
    sb::flexpath::StreamOptions opts;
    opts.queue_capacity = 0;  // rendezvous: every push blocks until popped
    sb::core::Workflow wf(fabric, opts);
    wf.add("gromacs", 2, {"atoms=16384", "steps=6", "substeps=2"});
    wf.add("magnitude", 3, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist.txt"});

    const double bp0 = reg.total("flexpath.backpressure_wait_seconds");
    wf.run();
    const double bp = reg.total("flexpath.backpressure_wait_seconds") - bp0;
    EXPECT_GT(bp, 0.0) << "rendezvous pushes must accumulate backpressure wait";

    // -- trace file: valid JSON, queue-depth counter track, >= 1 stall slice
    const std::string trace_path = "/tmp/sb_test_obs_trace.json";
    wf.write_trace(trace_path);
    const JsonValue trace = parse_json_file(trace_path);
    ASSERT_EQ(trace.kind, JsonValue::Kind::Array);
    ASSERT_FALSE(trace.arr.empty());

    bool transport_track = false, queue_depth_counter = false, stall_slice = false;
    bool step_slice = false;
    for (const JsonValue& ev : trace.arr) {
        ASSERT_EQ(ev.kind, JsonValue::Kind::Object);
        const JsonValue* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "M") {
            const JsonValue* args = ev.find("args");
            if (args && args->find("name") &&
                args->find("name")->str == "transport") {
                transport_track = true;
            }
        } else if (ph->str == "C") {
            const JsonValue* name = ev.find("name");
            if (name && name->str.find("queue depth") != std::string::npos) {
                queue_depth_counter = true;
                EXPECT_NE(ev.find("ts"), nullptr);
                ASSERT_NE(ev.find("args"), nullptr);
                EXPECT_NE(ev.find("args")->find("value"), nullptr);
            }
        } else if (ph->str == "b") {
            const JsonValue* cat = ev.find("cat");
            if (cat && (cat->str == "backpressure" || cat->str == "acquire")) {
                stall_slice = true;
            }
        } else if (ph->str == "X") {
            step_slice = true;
        }
    }
    EXPECT_TRUE(transport_track);
    EXPECT_TRUE(queue_depth_counter);
    EXPECT_TRUE(stall_slice) << "expected at least one backpressure/acquire slice";
    EXPECT_TRUE(step_slice);

    // -- metrics file: valid JSON carrying the stream-labelled instruments
    const std::string metrics_path = "/tmp/sb_test_obs_metrics.json";
    wf.write_metrics(metrics_path);
    const JsonValue doc = parse_json_file(metrics_path);
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_NE(doc.find("version"), nullptr);
    EXPECT_EQ(doc.find("version")->number, 1.0);
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->kind, JsonValue::Kind::Array);

    double bp_sum = 0.0;
    bool saw_steps = false, saw_adios = false, saw_mpi = false;
    for (const JsonValue& m : metrics->arr) {
        const JsonValue* name = m.find("name");
        ASSERT_NE(name, nullptr);
        if (name->str == "flexpath.backpressure_wait_seconds") {
            const JsonValue* labels = m.find("labels");
            ASSERT_NE(labels, nullptr);
            EXPECT_NE(labels->find("stream"), nullptr);
            bp_sum += m.find("sum")->number;
        }
        if (name->str == "flexpath.steps_assembled") saw_steps = true;
        if (name->str == "adios.steps_written") saw_adios = true;
        if (name->str == "mpi.collective_wait_seconds") saw_mpi = true;
    }
    EXPECT_GT(bp_sum, 0.0);
    EXPECT_TRUE(saw_steps);
    EXPECT_TRUE(saw_adios);
    EXPECT_TRUE(saw_mpi);

    // -- summary table mentions the key instruments
    const std::string table = wf.metrics_summary();
    EXPECT_NE(table.find("flexpath.backpressure_wait_seconds"), std::string::npos);
    EXPECT_NE(table.find("stream=gmx.fp"), std::string::npos);
}

TEST(ObsExport, LargeQueueShowsFarLessBackpressureThanRendezvous) {
    sb::sim::register_simulations();
    obs::set_enabled(true);
    auto& reg = obs::Registry::global();

    const auto run_with_capacity = [&](std::size_t cap) {
        sb::flexpath::Fabric fabric;
        sb::flexpath::StreamOptions opts;
        opts.queue_capacity = cap;
        sb::core::Workflow wf(fabric, opts);
        wf.add("gromacs", 2, {"atoms=16384", "steps=6", "substeps=2"});
        wf.add("magnitude", 3, {"gmx.fp", "coords", "m.fp", "r"});
        wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist2.txt"});
        const double bp0 = reg.total("flexpath.backpressure_wait_seconds");
        wf.run();
        return reg.total("flexpath.backpressure_wait_seconds") - bp0;
    };

    const double bp_rendezvous = run_with_capacity(0);
    const double bp_large = run_with_capacity(64);
    EXPECT_GT(bp_rendezvous, 0.0);
    // With a queue deeper than the total step count nothing ever blocks on
    // a full queue; only the non-blocking bookkeeping time remains.
    EXPECT_LT(bp_large, bp_rendezvous);
}

TEST(ObsExport, TraceIsValidJsonWithMetricsDisabled) {
    EnabledGuard guard;
    sb::sim::register_simulations();
    obs::set_enabled(false);  // no trace events, no metrics recorded

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=1024", "steps=2", "substeps=1"});
    wf.add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist3.txt"});
    wf.run();

    const std::string trace_path = "/tmp/sb_test_obs_trace_off.json";
    wf.write_trace(trace_path);
    const JsonValue trace = parse_json_file(trace_path);
    ASSERT_EQ(trace.kind, JsonValue::Kind::Array);
    // The per-instance metadata is always present; no transport track.
    for (const JsonValue& ev : trace.arr) {
        const JsonValue* args = ev.find("args");
        if (args && args->find("name")) {
            EXPECT_NE(args->find("name")->str, "transport");
        }
    }

    const std::string metrics_path = "/tmp/sb_test_obs_metrics_off.json";
    wf.write_metrics(metrics_path);
    const JsonValue doc = parse_json_file(metrics_path);
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
}

// A steady multi-step pipeline exercises the redistribution fast path: the
// plan cache hits from the second step on, the writer-aligned pass-through
// reads go zero-copy, and the exported counters carry rank= labels.
TEST(ObsExport, FastPathCountersInSteadyWorkflow) {
    sb::sim::register_simulations();
    obs::set_enabled(true);
    auto& reg = obs::Registry::global();

    const double hits0 = reg.total("flexpath.plan_hits");
    const double zc0 = reg.total("flexpath.zero_copy_reads");

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=4096", "steps=4", "substeps=1"});
    wf.add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist4.txt"});
    wf.run();

    EXPECT_GT(reg.total("flexpath.plan_hits") - hits0, 0.0)
        << "repeated (var, box) reads must replay cached plans";
    EXPECT_GT(reg.total("flexpath.zero_copy_reads") - zc0, 0.0)
        << "writer-aligned boxes must read zero-copy";

    const std::string metrics_path = "/tmp/sb_test_obs_metrics_fastpath.json";
    wf.write_metrics(metrics_path);
    const JsonValue doc = parse_json_file(metrics_path);
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    bool saw_plan_hits = false;
    for (const JsonValue& m : metrics->arr) {
        const JsonValue* name = m.find("name");
        if (name && name->str == "flexpath.plan_hits") {
            saw_plan_hits = true;
            const JsonValue* labels = m.find("labels");
            ASSERT_NE(labels, nullptr);
            EXPECT_NE(labels->find("stream"), nullptr);
            EXPECT_NE(labels->find("rank"), nullptr);
        }
    }
    EXPECT_TRUE(saw_plan_hits);
}

}  // namespace
