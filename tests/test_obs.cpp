// Tests for sb::obs: the instrument primitives, the registry, the trace
// log, and — through a real 2-writer/3-reader workflow — the end-to-end
// exporters (Workflow::write_trace / write_metrics).  A minimal
// recursive-descent JSON parser validates that the exported files are
// well-formed documents, not just grep-able text.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/workflow.hpp"
#include "flexpath/stream.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/source_component.hpp"

namespace obs = sb::obs;

namespace {

// ---- minimal JSON parser ---------------------------------------------------

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue* find(const std::string& key) const {
        const auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : s_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing content");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) {
        throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) +
                                 ": " + why);
    }
    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                    s_[pos_] == '\n' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }
    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    bool consume(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool consume_word(std::string_view w) {
        if (s_.substr(pos_, w.size()) == w) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    JsonValue value() {
        skip_ws();
        JsonValue v;
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"':
                v.kind = JsonValue::Kind::String;
                v.str = string();
                return v;
            case 't':
                if (!consume_word("true")) fail("bad literal");
                v.kind = JsonValue::Kind::Bool;
                v.boolean = true;
                return v;
            case 'f':
                if (!consume_word("false")) fail("bad literal");
                v.kind = JsonValue::Kind::Bool;
                return v;
            case 'n':
                if (!consume_word("null")) fail("bad literal");
                return v;
            default: return number();
        }
    }

    JsonValue object() {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skip_ws();
        if (consume('}')) return v;
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v.obj.emplace(std::move(key), value());
            skip_ws();
            if (consume('}')) return v;
            expect(',');
        }
    }

    JsonValue array() {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skip_ws();
        if (consume(']')) return v;
        while (true) {
            v.arr.push_back(value());
            skip_ws();
            if (consume(']')) return v;
            expect(',');
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // The exporters only emit \u00xx; that's all we decode.
                    out.push_back(static_cast<char>(code & 0xff));
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(std::string(s_.substr(start, pos_ - start)));
        return v;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

JsonValue parse_json_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

// Re-enables metrics when a test that disables them exits (other tests in
// this binary rely on the instruments being live).
struct EnabledGuard {
    ~EnabledGuard() { obs::set_enabled(true); }
};

// ---- instrument primitives -------------------------------------------------

TEST(ObsCounter, AccumulatesAndResets) {
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, DisabledIsNoOp) {
    EnabledGuard guard;
    obs::Counter c;
    obs::set_enabled(false);
    c.add(5);
    EXPECT_EQ(c.value(), 0u);
    obs::set_enabled(true);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(ObsGauge, TracksHighWaterMark) {
    obs::Gauge g;
    g.set(3.0);
    g.set(7.0);
    g.set(2.0);
    EXPECT_EQ(g.value(), 2.0);
    EXPECT_EQ(g.high_water(), 7.0);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.high_water(), 0.0);
}

TEST(ObsHistogram, CountSumMinMax) {
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0.0);  // empty
    EXPECT_EQ(h.max(), 0.0);
    h.observe(0.5);
    h.observe(2.0);
    h.observe(0.25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 2.75);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(ObsHistogram, BucketIndexing) {
    using H = obs::Histogram;
    EXPECT_EQ(H::bucket_index(0.0), 0);    // underflow
    EXPECT_EQ(H::bucket_index(-1.0), 0);
    EXPECT_EQ(H::bucket_index(1.0), -H::kMinExp + 1);  // ilogb(1.0) == 0
    EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);  // overflow
    // Each finite bucket's upper bound contains values just below it.
    for (int i = 2; i < H::kBuckets - 1; ++i) {
        const double ub = H::bucket_upper_bound(i);
        EXPECT_EQ(H::bucket_index(std::nextafter(ub, 0.0)), i) << "bucket " << i;
        EXPECT_EQ(H::bucket_index(ub), i + 1) << "bucket " << i;
    }
}

TEST(ObsHistogram, ReservoirKeepsEarlySamples) {
    obs::Histogram h;
    for (int i = 1; i <= 10; ++i) h.observe(static_cast<double>(i));
    const auto samples = h.reservoir();
    ASSERT_EQ(samples.size(), 10u);
    EXPECT_EQ(samples.front(), 1.0);
    EXPECT_EQ(samples.back(), 10.0);
}

// ---- registry --------------------------------------------------------------

TEST(ObsRegistry, LabelsAddressDistinctInstruments) {
    auto& reg = obs::Registry::global();
    obs::Counter& a = reg.counter("test.labels", {{"stream", "a"}});
    obs::Counter& b = reg.counter("test.labels", {{"stream", "b"}});
    EXPECT_NE(&a, &b);
    // Label order is canonicalized: same set, same instrument.
    obs::Counter& c1 = reg.counter("test.two", {{"x", "1"}, {"y", "2"}});
    obs::Counter& c2 = reg.counter("test.two", {{"y", "2"}, {"x", "1"}});
    EXPECT_EQ(&c1, &c2);
}

TEST(ObsRegistry, ResetZeroesButKeepsIdentity) {
    auto& reg = obs::Registry::global();
    obs::Counter& c = reg.counter("test.reset");
    c.add(9);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(&reg.counter("test.reset"), &c);  // same instrument after reset
}

TEST(ObsRegistry, TotalSumsAcrossLabelSets) {
    auto& reg = obs::Registry::global();
    reg.counter("test.total", {{"s", "1"}}).add(2);
    reg.counter("test.total", {{"s", "2"}}).add(3);
    const double before = reg.total("test.total");
    reg.counter("test.total", {{"s", "1"}}).add(1);
    EXPECT_DOUBLE_EQ(reg.total("test.total") - before, 1.0);
    reg.histogram("test.total_h").observe(1.5);
    EXPECT_DOUBLE_EQ(reg.total("test.total_h"), 1.5);
}

TEST(ObsRegistry, SnapshotCarriesHistogramStats) {
    auto& reg = obs::Registry::global();
    obs::Histogram& h = reg.histogram("test.snap_h", {{"k", "v"}});
    h.reset();
    for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
    bool found = false;
    for (const auto& m : reg.snapshot()) {
        if (m.name != "test.snap_h") continue;
        found = true;
        EXPECT_EQ(m.type, obs::MetricSnapshot::Type::Histogram);
        ASSERT_EQ(m.labels.size(), 1u);
        EXPECT_EQ(m.labels[0].first, "k");
        EXPECT_EQ(m.count, 100u);
        EXPECT_DOUBLE_EQ(m.sum, 5050.0);
        EXPECT_DOUBLE_EQ(m.min, 1.0);
        EXPECT_DOUBLE_EQ(m.max, 100.0);
        EXPECT_NEAR(m.p50, 50.0, 2.0);
        EXPECT_NEAR(m.p95, 95.0, 2.0);
        EXPECT_FALSE(m.buckets.empty());
    }
    EXPECT_TRUE(found);
}

// ---- json helpers ----------------------------------------------------------

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
    EXPECT_EQ(obs::json_escape("plain"), "plain");
    EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
    // Round-trips through the test parser.
    const std::string doc = "\"" + obs::json_escape("x\"\\\n\t\x02y") + "\"";
    const JsonValue v = JsonParser(doc).parse();
    EXPECT_EQ(v.str, "x\"\\\n\t\x02y");
}

TEST(ObsJson, NumbersAreAlwaysValidJson) {
    EXPECT_EQ(obs::json_number(0.0), "0");
    EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(obs::json_number(std::nan("")), "0");
    const double v = 0.1234567890123;
    EXPECT_DOUBLE_EQ(std::stod(obs::json_number(v)), v);
}

// ---- trace log -------------------------------------------------------------

TEST(ObsTraceLog, RecordsAndFiltersByEpoch) {
    auto& tl = obs::TraceLog::global();
    tl.clear();
    const double epoch = obs::steady_seconds();
    tl.counter("queue depth", "s1", 2.0);
    tl.slice("backpressure", "s1", "backpressure", epoch, epoch + 0.001);
    const auto all = tl.events_after(epoch);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].kind, obs::TraceEvent::Kind::Counter);
    EXPECT_EQ(all[0].stream, "s1");
    EXPECT_EQ(all[1].kind, obs::TraceEvent::Kind::Slice);
    EXPECT_EQ(all[1].category, "backpressure");
    // A later epoch filters everything out.
    EXPECT_TRUE(tl.events_after(obs::steady_seconds() + 1.0).empty());
    tl.clear();
    EXPECT_TRUE(tl.events_after(0.0).empty());
}

TEST(ObsTraceLog, DisabledRecordsNothing) {
    EnabledGuard guard;
    auto& tl = obs::TraceLog::global();
    tl.clear();
    obs::set_enabled(false);
    tl.counter("queue depth", "s1", 1.0);
    tl.slice("backpressure", "s1", "backpressure", 0.0, 1.0);
    EXPECT_TRUE(tl.events_after(0.0).empty());
}

// ---- end-to-end export -----------------------------------------------------

TEST(ObsExport, RendezvousStreamsShowBackpressureAndTraceStalls) {
    sb::sim::register_simulations();
    obs::set_enabled(true);
    obs::TraceLog::global().clear();
    auto& reg = obs::Registry::global();

    sb::flexpath::Fabric fabric;
    sb::flexpath::StreamOptions opts;
    opts.queue_capacity = 0;  // rendezvous: every push blocks until popped
    sb::core::Workflow wf(fabric, opts);
    wf.add("gromacs", 2, {"atoms=16384", "steps=6", "substeps=2"});
    wf.add("magnitude", 3, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist.txt"});

    const double bp0 = reg.total("flexpath.backpressure_wait_seconds");
    wf.run();
    const double bp = reg.total("flexpath.backpressure_wait_seconds") - bp0;
    EXPECT_GT(bp, 0.0) << "rendezvous pushes must accumulate backpressure wait";

    // -- trace file: valid JSON, queue-depth counter track, >= 1 stall slice
    const std::string trace_path = "/tmp/sb_test_obs_trace.json";
    wf.write_trace(trace_path);
    const JsonValue trace = parse_json_file(trace_path);
    ASSERT_EQ(trace.kind, JsonValue::Kind::Array);
    ASSERT_FALSE(trace.arr.empty());

    bool transport_track = false, queue_depth_counter = false, stall_slice = false;
    bool step_slice = false;
    for (const JsonValue& ev : trace.arr) {
        ASSERT_EQ(ev.kind, JsonValue::Kind::Object);
        const JsonValue* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "M") {
            const JsonValue* args = ev.find("args");
            if (args && args->find("name") &&
                args->find("name")->str == "transport") {
                transport_track = true;
            }
        } else if (ph->str == "C") {
            const JsonValue* name = ev.find("name");
            if (name && name->str.find("queue depth") != std::string::npos) {
                queue_depth_counter = true;
                EXPECT_NE(ev.find("ts"), nullptr);
                ASSERT_NE(ev.find("args"), nullptr);
                EXPECT_NE(ev.find("args")->find("value"), nullptr);
            }
        } else if (ph->str == "b") {
            const JsonValue* cat = ev.find("cat");
            if (cat && (cat->str == "backpressure" || cat->str == "acquire")) {
                stall_slice = true;
            }
        } else if (ph->str == "X") {
            step_slice = true;
        }
    }
    EXPECT_TRUE(transport_track);
    EXPECT_TRUE(queue_depth_counter);
    EXPECT_TRUE(stall_slice) << "expected at least one backpressure/acquire slice";
    EXPECT_TRUE(step_slice);

    // -- metrics file: valid JSON carrying the stream-labelled instruments
    const std::string metrics_path = "/tmp/sb_test_obs_metrics.json";
    wf.write_metrics(metrics_path);
    const JsonValue doc = parse_json_file(metrics_path);
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_NE(doc.find("version"), nullptr);
    EXPECT_EQ(doc.find("version")->number, 1.0);
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->kind, JsonValue::Kind::Array);

    double bp_sum = 0.0;
    bool saw_steps = false, saw_adios = false, saw_mpi = false;
    for (const JsonValue& m : metrics->arr) {
        const JsonValue* name = m.find("name");
        ASSERT_NE(name, nullptr);
        if (name->str == "flexpath.backpressure_wait_seconds") {
            const JsonValue* labels = m.find("labels");
            ASSERT_NE(labels, nullptr);
            EXPECT_NE(labels->find("stream"), nullptr);
            bp_sum += m.find("sum")->number;
        }
        if (name->str == "flexpath.steps_assembled") saw_steps = true;
        if (name->str == "adios.steps_written") saw_adios = true;
        if (name->str == "mpi.collective_wait_seconds") saw_mpi = true;
    }
    EXPECT_GT(bp_sum, 0.0);
    EXPECT_TRUE(saw_steps);
    EXPECT_TRUE(saw_adios);
    EXPECT_TRUE(saw_mpi);

    // -- summary table mentions the key instruments
    const std::string table = wf.metrics_summary();
    EXPECT_NE(table.find("flexpath.backpressure_wait_seconds"), std::string::npos);
    EXPECT_NE(table.find("stream=gmx.fp"), std::string::npos);
}

TEST(ObsExport, LargeQueueShowsFarLessBackpressureThanRendezvous) {
    sb::sim::register_simulations();
    obs::set_enabled(true);
    auto& reg = obs::Registry::global();

    const auto run_with_capacity = [&](std::size_t cap) {
        sb::flexpath::Fabric fabric;
        sb::flexpath::StreamOptions opts;
        opts.queue_capacity = cap;
        sb::core::Workflow wf(fabric, opts);
        wf.add("gromacs", 2, {"atoms=16384", "steps=6", "substeps=2"});
        wf.add("magnitude", 3, {"gmx.fp", "coords", "m.fp", "r"});
        wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist2.txt"});
        const double bp0 = reg.total("flexpath.backpressure_wait_seconds");
        wf.run();
        return reg.total("flexpath.backpressure_wait_seconds") - bp0;
    };

    const double bp_rendezvous = run_with_capacity(0);
    const double bp_large = run_with_capacity(64);
    EXPECT_GT(bp_rendezvous, 0.0);
    // With a queue deeper than the total step count nothing ever blocks on
    // a full queue; only the non-blocking bookkeeping time remains.
    EXPECT_LT(bp_large, bp_rendezvous);
}

TEST(ObsExport, TraceIsValidJsonWithMetricsDisabled) {
    EnabledGuard guard;
    sb::sim::register_simulations();
    obs::set_enabled(false);  // no trace events, no metrics recorded

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=1024", "steps=2", "substeps=1"});
    wf.add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist3.txt"});
    wf.run();

    const std::string trace_path = "/tmp/sb_test_obs_trace_off.json";
    wf.write_trace(trace_path);
    const JsonValue trace = parse_json_file(trace_path);
    ASSERT_EQ(trace.kind, JsonValue::Kind::Array);
    // The per-instance metadata is always present; no transport track.
    for (const JsonValue& ev : trace.arr) {
        const JsonValue* args = ev.find("args");
        if (args && args->find("name")) {
            EXPECT_NE(args->find("name")->str, "transport");
        }
    }

    const std::string metrics_path = "/tmp/sb_test_obs_metrics_off.json";
    wf.write_metrics(metrics_path);
    const JsonValue doc = parse_json_file(metrics_path);
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
}

// A steady multi-step pipeline exercises the redistribution fast path: the
// plan cache hits from the second step on, the writer-aligned pass-through
// reads go zero-copy, and the exported counters carry rank= labels.
TEST(ObsExport, FastPathCountersInSteadyWorkflow) {
    sb::sim::register_simulations();
    obs::set_enabled(true);
    auto& reg = obs::Registry::global();

    const double hits0 = reg.total("flexpath.plan_hits");
    const double zc0 = reg.total("flexpath.zero_copy_reads");

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=4096", "steps=4", "substeps=1"});
    wf.add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", "/tmp/sb_test_obs_hist4.txt"});
    wf.run();

    EXPECT_GT(reg.total("flexpath.plan_hits") - hits0, 0.0)
        << "repeated (var, box) reads must replay cached plans";
    EXPECT_GT(reg.total("flexpath.zero_copy_reads") - zc0, 0.0)
        << "writer-aligned boxes must read zero-copy";

    const std::string metrics_path = "/tmp/sb_test_obs_metrics_fastpath.json";
    wf.write_metrics(metrics_path);
    const JsonValue doc = parse_json_file(metrics_path);
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    bool saw_plan_hits = false;
    for (const JsonValue& m : metrics->arr) {
        const JsonValue* name = m.find("name");
        if (name && name->str == "flexpath.plan_hits") {
            saw_plan_hits = true;
            const JsonValue* labels = m.find("labels");
            ASSERT_NE(labels, nullptr);
            EXPECT_NE(labels->find("stream"), nullptr);
            EXPECT_NE(labels->find("rank"), nullptr);
        }
    }
    EXPECT_TRUE(saw_plan_hits);
}

}  // namespace
