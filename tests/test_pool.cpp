// Tests for the recycling step-buffer pool (util/pool.hpp): size classes,
// generation invalidation, the SB_POOL gate, metrics, and the sb::check
// poison-on-retire quarantine.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "check/check.hpp"
#include "check/lifetime.hpp"
#include "obs/metrics.hpp"
#include "util/pool.hpp"

namespace u = sb::util;
namespace chk = sb::check;

namespace {

/// Pins the pool on and isolates each test behind a generation bump, so
/// buffers parked (or still outstanding) elsewhere never leak in or out.
class PoolTest : public ::testing::Test {
protected:
    void SetUp() override {
        was_enabled_ = u::pool_enabled();
        u::set_pool_enabled(true);
        u::BufferPool::global().bump_generation();
    }

    void TearDown() override {
        u::BufferPool::global().bump_generation();
        u::set_pool_enabled(was_enabled_);
    }

    bool was_enabled_ = true;
};

}  // namespace

TEST_F(PoolTest, AcquireRecyclesStorage) {
    auto& pool = u::BufferPool::global();
    u::PooledBytes buf = pool.acquire(4096);
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(buf->size(), 4096u);
    const std::byte* addr = buf->data();
    buf.reset();  // retires: parks on the 4 KiB shelf
    EXPECT_EQ(pool.free_buffers(), 1u);

    u::PooledBytes again = pool.acquire(4096);
    EXPECT_EQ(again->data(), addr);  // same storage, no allocation
    EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST_F(PoolTest, SizeClassesShareStorageAcrossSizes) {
    auto& pool = u::BufferPool::global();
    u::PooledBytes buf = pool.acquire(300);  // class 512
    EXPECT_EQ(buf->size(), 300u);
    EXPECT_GE(buf->capacity(), 512u);
    const std::byte* addr = buf->data();
    buf.reset();
    // Any size in (256, 512] reuses the parked buffer.
    u::PooledBytes other = pool.acquire(500);
    EXPECT_EQ(other->size(), 500u);
    EXPECT_EQ(other->data(), addr);
}

TEST_F(PoolTest, DisabledActsLikePlainAllocation) {
    auto& pool = u::BufferPool::global();
    u::set_pool_enabled(false);
    u::PooledBytes buf = pool.acquire(2048);
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(buf->size(), 2048u);
    // Disabled buffers are zero-initialized, exactly like the seed's fresh
    // vectors (the bit-identity baseline for the SB_POOL=off A/B leg).
    for (const std::byte b : *buf) EXPECT_EQ(b, std::byte{0});
    buf.reset();
    EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST_F(PoolTest, GenerationBumpInvalidatesOutstandingBuffers) {
    auto& pool = u::BufferPool::global();
    u::PooledBytes buf = pool.acquire(1024);
    pool.bump_generation();
    buf.reset();  // stale generation: frees instead of parking
    EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST_F(PoolTest, ShelfCapacityBoundsParkedBuffers) {
    auto& pool = u::BufferPool::global();
    std::vector<u::PooledBytes> bufs;
    for (int i = 0; i < 12; ++i) bufs.push_back(pool.acquire(1024));
    bufs.clear();
    EXPECT_LE(pool.free_buffers(), 8u);  // kShelfCapacity
    EXPECT_GT(pool.free_buffers(), 0u);
    pool.trim();
    EXPECT_EQ(pool.free_buffers(), 0u);
    EXPECT_EQ(pool.free_bytes(), 0u);
}

TEST_F(PoolTest, ZeroSizedAcquireNeverNull) {
    u::PooledBytes buf = u::acquire_bytes(0);
    ASSERT_NE(buf, nullptr);
    EXPECT_TRUE(buf->empty());
}

TEST_F(PoolTest, HitAndMissMetricsCount) {
    if (!sb::obs::enabled()) GTEST_SKIP() << "SB_METRICS=off";
    auto& reg = sb::obs::Registry::global();
    const std::uint64_t hits0 = reg.counter("pool.hits", {}).value();
    const std::uint64_t misses0 = reg.counter("pool.misses", {}).value();
    u::PooledBytes buf = u::acquire_bytes(8192);
    buf.reset();
    u::PooledBytes again = u::acquire_bytes(8192);
    EXPECT_GE(reg.counter("pool.misses", {}).value(), misses0 + 1);
    EXPECT_GE(reg.counter("pool.hits", {}).value(), hits0 + 1);
}

// Under sb::check, a retired buffer is poisoned and quarantined: reads
// through a stale span trip the lifetime guard until the pool hands the
// storage out again.
TEST_F(PoolTest, RetirePoisonsAndQuarantinesUnderCheck) {
    const bool check_was = chk::enabled();
    chk::set_enabled(true);
    chk::clear_diagnostics();
    chk::reset_views();

    u::PooledBytes buf = u::acquire_bytes(1024);
    const std::byte* addr = buf->data();
    (*buf)[0] = std::byte{0x11};
    buf.reset();  // parked: poisoned + quarantined, address stays valid
    EXPECT_EQ(addr[0], std::byte{0xEF});
    EXPECT_THROW(chk::note_read(addr, 16), chk::LifetimeError);

    // Reacquiring the storage lifts the quarantine for the new owner.
    u::PooledBytes again = u::acquire_bytes(1024);
    ASSERT_EQ(again->data(), addr);
    EXPECT_NO_THROW(chk::note_read(addr, 16));

    chk::clear_diagnostics();
    chk::reset_views();
    chk::set_enabled(check_was);
}
