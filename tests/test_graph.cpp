// Tests for the workflow-management layer: component port introspection,
// dataflow-graph validation, and the Graphviz rendering.
#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "core/registry.hpp"
#include "sim/source_component.hpp"

namespace core = sb::core;
namespace u = sb::util;

namespace {

std::vector<core::LaunchEntry> entries_of(const std::string& script) {
    sb::sim::register_simulations();
    return core::parse_launch_script(script);
}

bool has_issue(const std::vector<core::GraphIssue>& issues,
               core::GraphIssue::Kind kind) {
    for (const auto& i : issues) {
        if (i.kind == kind) return true;
    }
    return false;
}

}  // namespace

// ---- port introspection ------------------------------------------------------

TEST(Ports, AnalyticsComponents) {
    const auto p = [](const char* name, std::vector<std::string> args) {
        return core::make_component(name)->ports(u::ArgList(std::move(args)));
    };
    auto sel = p("select", {"in.fp", "a", "1", "out.fp", "b", "x"});
    EXPECT_EQ(sel.inputs, (std::vector<std::string>{"in.fp"}));
    EXPECT_EQ(sel.outputs, (std::vector<std::string>{"out.fp"}));
    EXPECT_TRUE(sel.known);

    auto mag = p("magnitude", {"in.fp", "a", "out.fp", "b"});
    EXPECT_EQ(mag.inputs, (std::vector<std::string>{"in.fp"}));
    EXPECT_EQ(mag.outputs, (std::vector<std::string>{"out.fp"}));

    auto dr = p("dim-reduce", {"in.fp", "a", "2", "1", "out.fp", "b"});
    EXPECT_EQ(dr.outputs, (std::vector<std::string>{"out.fp"}));

    auto hist = p("histogram", {"in.fp", "a", "16"});
    EXPECT_EQ(hist.inputs, (std::vector<std::string>{"in.fp"}));
    EXPECT_TRUE(hist.outputs.empty());

    auto fork = p("fork", {"in.fp", "a", "b1.fp", "x", "b2.fp", "y"});
    EXPECT_EQ(fork.outputs, (std::vector<std::string>{"b1.fp", "b2.fp"}));

    auto th = p("threshold", {"in.fp", "a", "band", "0", "1", "out.fp", "b"});
    EXPECT_EQ(th.outputs, (std::vector<std::string>{"out.fp"}));
    auto th2 = p("threshold", {"in.fp", "a", "above", "0", "out.fp", "b"});
    EXPECT_EQ(th2.outputs, (std::vector<std::string>{"out.fp"}));

    auto val = p("validate", {"a.fp", "x", "b.fp", "y"});
    EXPECT_EQ(val.inputs, (std::vector<std::string>{"a.fp", "b.fp"}));

    auto fr = p("file-reader", {"prefix", "out.fp", "b"});
    EXPECT_EQ(fr.outputs, (std::vector<std::string>{"out.fp"}));
    auto fw = p("file-writer", {"in.fp", "a", "prefix"});
    EXPECT_EQ(fw.inputs, (std::vector<std::string>{"in.fp"}));
}

TEST(Ports, SimulationDrivers) {
    sb::sim::register_simulations();
    auto lmp = core::make_component("lammps")->ports(
        u::ArgList({"rows=8", "cols=8", "stream=my.fp"}));
    EXPECT_TRUE(lmp.inputs.empty());
    EXPECT_EQ(lmp.outputs, (std::vector<std::string>{"my.fp"}));

    auto gtcp = core::make_component("gtcp")->ports(u::ArgList{});
    EXPECT_EQ(gtcp.outputs, (std::vector<std::string>{"gtcp.fp"}));

    // output=false: the driver computes but opens no streams.
    auto silent = core::make_component("gromacs")->ports(
        u::ArgList({"output=false"}));
    EXPECT_TRUE(silent.outputs.empty());
}

TEST(Ports, BadArgumentsThrow) {
    EXPECT_THROW((void)core::make_component("select")->ports(u::ArgList({"in.fp"})),
                 u::ArgError);
}

// ---- validation ---------------------------------------------------------------

TEST(GraphValidation, WellFormedPipelinePasses) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 2 gromacs atoms=8 steps=1 &\n"
        "aprun -n 2 magnitude gmx.fp coords m.fp r &\n"
        "aprun -n 1 histogram m.fp r 4 &\n"));
    EXPECT_TRUE(issues.empty());
    EXPECT_TRUE(core::graph_is_runnable(issues));
}

TEST(GraphValidation, TypoedStreamNameIsDanglingInput) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 2 gromacs atoms=8 steps=1 &\n"
        "aprun -n 2 magnitude gmxx.fp coords m.fp r &\n"  // typo: gmxx
        "aprun -n 1 histogram m.fp r 4 &\n"));
    EXPECT_TRUE(has_issue(issues, core::GraphIssue::Kind::DanglingInput));
    EXPECT_TRUE(has_issue(issues, core::GraphIssue::Kind::UnconsumedOutput));
    EXPECT_FALSE(core::graph_is_runnable(issues));
}

TEST(GraphValidation, UnconsumedOutputIsOnlyAWarning) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 2 gromacs atoms=8 steps=1 &\n"
        "aprun -n 2 fork gmx.fp coords used.fp a spare.fp b &\n"
        "aprun -n 1 moments used.fp a &\n"));
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind, core::GraphIssue::Kind::UnconsumedOutput);
    EXPECT_FALSE(issues[0].fatal);
    EXPECT_TRUE(core::graph_is_runnable(issues));
}

TEST(GraphValidation, MultipleWritersDetected) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 1 gromacs atoms=8 stream=x.fp &\n"
        "aprun -n 1 lammps rows=4 cols=4 stream=x.fp &\n"
        "aprun -n 1 moments x.fp coords &\n"));
    EXPECT_TRUE(has_issue(issues, core::GraphIssue::Kind::MultipleWriters));
    EXPECT_FALSE(core::graph_is_runnable(issues));
}

TEST(GraphValidation, MultipleReadersDetected) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 1 gromacs atoms=8 &\n"
        "aprun -n 1 moments gmx.fp coords a.txt &\n"
        "aprun -n 1 histogram gmx.fp coords 4 &\n"));
    EXPECT_TRUE(has_issue(issues, core::GraphIssue::Kind::MultipleReaders));
}

TEST(GraphValidation, CycleDetected) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 1 magnitude a.fp x b.fp y &\n"
        "aprun -n 1 magnitude b.fp y a.fp x &\n"));
    EXPECT_TRUE(has_issue(issues, core::GraphIssue::Kind::Cycle));
    EXPECT_FALSE(core::graph_is_runnable(issues));
}

TEST(GraphValidation, BadArgumentsReported) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 1 select onlyone &\n"));
    EXPECT_TRUE(has_issue(issues, core::GraphIssue::Kind::BadArguments));
    EXPECT_FALSE(core::graph_is_runnable(issues));
}

TEST(GraphValidation, UnknownComponentThrows) {
    EXPECT_THROW((void)core::validate_graph(entries_of("aprun -n 1 bogus a b &\n")),
                 std::runtime_error);
}

TEST(GraphValidation, PaperFigure8IsClean) {
    const auto issues = core::validate_graph(entries_of(
        "aprun -n 64 histogram velos.fp velocities 16 &\n"
        "aprun -n 256 magnitude lmpselect.fp lmpsel velos.fp velocities &\n"
        "aprun -n 256 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &\n"
        "aprun -n 1024 lammps rows=64 cols=64 &\n"
        "wait\n"));
    EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0].message);
}

TEST(GraphValidation, IssueKindNames) {
    EXPECT_STREQ(core::graph_issue_kind_name(core::GraphIssue::Kind::Cycle), "cycle");
    EXPECT_STREQ(core::graph_issue_kind_name(core::GraphIssue::Kind::DanglingInput),
                 "dangling-input");
}

// ---- dot rendering --------------------------------------------------------------

TEST(GraphDot, RendersNodesAndLabelledEdges) {
    const std::string dot = core::graph_to_dot(entries_of(
        "aprun -n 4 gromacs atoms=8 &\n"
        "aprun -n 2 magnitude gmx.fp coords m.fp r &\n"
        "aprun -n 1 histogram m.fp r 4 &\n"));
    EXPECT_NE(dot.find("digraph smartblock"), std::string::npos);
    EXPECT_NE(dot.find("gromacs x4"), std::string::npos);
    EXPECT_NE(dot.find("magnitude x2"), std::string::npos);
    EXPECT_NE(dot.find("label=\"gmx.fp\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"m.fp\""), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(GraphDot, MissingUpstreamRenderedDashed) {
    const std::string dot =
        core::graph_to_dot(entries_of("aprun -n 1 histogram ghost.fp x 4 &\n"));
    EXPECT_NE(dot.find("ghost.fp?"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(GraphResolve, NodesCarryEntriesAndPorts) {
    const auto nodes = core::resolve_graph(entries_of(
        "aprun -n 3 gromacs atoms=8 &\naprun -n 2 moments gmx.fp coords &\n"));
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0].entry.nprocs, 3);
    EXPECT_EQ(nodes[0].ports.outputs, (std::vector<std::string>{"gmx.fp"}));
    EXPECT_EQ(nodes[1].ports.inputs, (std::vector<std::string>{"gmx.fp"}));
}
