// Tests for the step-provenance layer: the SpanStore and its bounds, the
// critical-path analyzer against hand-computed references, the time-series
// sampler, and — through a real 3-component pipeline — the workflow-level
// joins (Workflow::critical_path, producer->consumer flow events in
// write_trace, and the "timeseries"/"critical_path" blocks of
// write_metrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/workflow.hpp"
#include "flexpath/stream.hpp"
#include "json_test_util.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/source_component.hpp"

namespace obs = sb::obs;
namespace core = sb::core;
namespace fp = sb::flexpath;
using jsonutil::JsonParser;
using jsonutil::JsonValue;
using jsonutil::parse_json_file;

namespace {

std::string tmp(const std::string& name) { return ::testing::TempDir() + "/" + name; }

struct EnabledGuard {
    ~EnabledGuard() { obs::set_enabled(true); }
};

// ---- SpanStore -------------------------------------------------------------

TEST(SpanStore, RecordsTimelinesAndFiltersByEpoch) {
    auto& store = obs::SpanStore::global();
    obs::set_enabled(true);
    const double t0 = obs::steady_seconds();
    store.record("span.basic", 3, obs::SegmentKind::WaitIn, t0, t0 + 0.002, 1);
    store.record("span.basic", 3, obs::SegmentKind::Consume, t0, t0 + 0.003, 1);
    store.record("span.basic", 4, obs::SegmentKind::Queue, t0 + 0.001, t0 + 0.004);

    const auto timelines = store.timelines("span.basic", t0);
    ASSERT_EQ(timelines.size(), 2u);
    EXPECT_EQ(timelines[0].step, 3u);
    EXPECT_EQ(timelines[0].scope, "span.basic");
    ASSERT_EQ(timelines[0].segments.size(), 2u);
    EXPECT_EQ(timelines[0].segments[0].kind, obs::SegmentKind::WaitIn);
    EXPECT_EQ(timelines[0].segments[0].rank, 1);
    EXPECT_NEAR(timelines[0].segments[0].seconds(), 0.002, 1e-12);
    EXPECT_EQ(timelines[1].step, 4u);
    EXPECT_EQ(timelines[1].segments[0].rank, -1);

    // A later epoch filters everything out; steps left empty are omitted.
    EXPECT_TRUE(store.timelines("span.basic", obs::steady_seconds() + 1.0).empty());

    const auto scopes = store.scopes();
    EXPECT_NE(std::find(scopes.begin(), scopes.end(), "span.basic"), scopes.end());
    store.clear();
    EXPECT_TRUE(store.timelines("span.basic").empty());
}

TEST(SpanStore, DisabledIsANoOp) {
    EnabledGuard guard;
    auto& store = obs::SpanStore::global();
    obs::set_enabled(false);
    store.record("span.disabled", 0, obs::SegmentKind::Compute, 1.0, 2.0);
    EXPECT_TRUE(store.timelines("span.disabled").empty());
    obs::set_enabled(true);
    store.record("span.disabled", 0, obs::SegmentKind::Compute, 1.0, 2.0);
    EXPECT_EQ(store.timelines("span.disabled").size(), 1u);
    store.clear();
}

TEST(SpanStore, ScopedActorLabelsSegmentsAndNests) {
    auto& store = obs::SpanStore::global();
    obs::set_enabled(true);
    EXPECT_EQ(obs::ScopedActor::current(), "");
    {
        const obs::ScopedActor outer("magnitude#1");
        EXPECT_EQ(obs::ScopedActor::current(), "magnitude#1");
        {
            const obs::ScopedActor inner("histogram#2");
            store.record("span.actor", 0, obs::SegmentKind::WaitIn, 1.0, 2.0, 0);
        }
        EXPECT_EQ(obs::ScopedActor::current(), "magnitude#1");
    }
    EXPECT_EQ(obs::ScopedActor::current(), "");
    const auto timelines = store.timelines("span.actor");
    ASSERT_EQ(timelines.size(), 1u);
    EXPECT_EQ(timelines[0].segments.at(0).actor, "histogram#2");
    store.clear();
}

TEST(SpanStore, EvictsOldestStepsPastTheScopeBound) {
    auto& store = obs::SpanStore::global();
    obs::set_enabled(true);
    store.clear();
    const std::size_t extra = 40;
    for (std::size_t s = 0; s < obs::SpanStore::kMaxStepsPerScope + extra; ++s) {
        store.record("span.bound_steps", s, obs::SegmentKind::Compute, 1.0, 2.0);
    }
    const auto timelines = store.timelines("span.bound_steps");
    ASSERT_EQ(timelines.size(), obs::SpanStore::kMaxStepsPerScope);
    // The retained window is the most recent steps: the oldest were evicted.
    EXPECT_EQ(timelines.front().step, extra);
    EXPECT_EQ(timelines.back().step,
              obs::SpanStore::kMaxStepsPerScope + extra - 1);
    store.clear();
}

TEST(SpanStore, DropsAndCountsSegmentsPastTheStepBound) {
    auto& store = obs::SpanStore::global();
    obs::set_enabled(true);
    store.clear();
    const std::uint64_t dropped0 = store.dropped();
    const std::size_t extra = 10;
    for (std::size_t i = 0; i < obs::SpanStore::kMaxSegmentsPerStep + extra; ++i) {
        store.record("span.bound_segs", 7, obs::SegmentKind::Compute, 1.0, 2.0,
                     static_cast<int>(i));
    }
    const auto timelines = store.timelines("span.bound_segs");
    ASSERT_EQ(timelines.size(), 1u);
    EXPECT_EQ(timelines[0].segments.size(), obs::SpanStore::kMaxSegmentsPerStep);
    EXPECT_EQ(store.dropped() - dropped0, extra);
    store.clear();
}

TEST(SpanStore, SegmentKindNamesAreStable) {
    EXPECT_STREQ(obs::segment_kind_name(obs::SegmentKind::Compute), "compute");
    EXPECT_STREQ(obs::segment_kind_name(obs::SegmentKind::WaitIn), "wait-in");
    EXPECT_STREQ(obs::segment_kind_name(obs::SegmentKind::BackpressureOut),
                 "backpressure-out");
}

// ---- critical-path analyzer (hand-computed reference) ----------------------

// A synthetic 3-stage pipeline sim#0 -> (a) -> mid#1 -> (b) -> sink#2 with
// per-step observations chosen so every branch of the walk is exercised,
// checked against the verdicts computed by hand in the comments.
std::vector<obs::InstanceSteps> synthetic_pipeline() {
    obs::InstanceSteps sim;
    sim.instance = "sim#0";
    sim.outputs = {"a"};
    obs::InstanceSteps mid;
    mid.instance = "mid#1";
    mid.inputs = {"a"};
    mid.outputs = {"b"};
    obs::InstanceSteps sink;
    sink.instance = "sink#2";
    sink.inputs = {"b"};

    using Step = obs::InstanceSteps::Step;
    // Step 0 — source-bound: sink waits on b (10ms) -> mid waits on a (9ms)
    // -> sim computes 9ms >= 1ms bp: limiter sim#0, compute, 9ms.
    sim.steps.push_back(Step{0, 0.009, {}, {{"a", 0.001}}});
    mid.steps.push_back(Step{0, 0.001, {{"a", 0.009}}, {{"b", 0.001}}});
    sink.steps.push_back(Step{0, 0.001, {{"b", 0.010}}, {}});
    // Step 1 — middle-bound: sink waits on b (9ms) -> mid computes 8ms,
    // which dominates its 1ms wait and 1ms bp: limiter mid#1, compute, 8ms.
    sim.steps.push_back(Step{1, 0.001, {}, {{"a", 0.010}}});
    mid.steps.push_back(Step{1, 0.008, {{"a", 0.001}}, {{"b", 0.001}}});
    sink.steps.push_back(Step{1, 0.001, {{"b", 0.009}}, {}});
    // Step 2 — backpressure terminal: sink waits on b (6ms) -> mid's
    // dominant segment is 7ms bp on b, but b's consumer (sink) was already
    // visited: limiter mid#1, backpressure-out, 7ms.
    sim.steps.push_back(Step{2, 0.001, {}, {{"a", 0.001}}});
    mid.steps.push_back(Step{2, 0.001, {{"a", 0.001}}, {{"b", 0.007}}});
    sink.steps.push_back(Step{2, 0.001, {{"b", 0.006}}, {}});
    // Step 3 — wait-in terminal: only the sink has data, so its 5ms wait on
    // b cannot be followed upstream: limiter sink#2, wait-in, 5ms.
    sink.steps.push_back(Step{3, 0.001, {{"b", 0.005}}, {}});

    return {sim, mid, sink};
}

TEST(CriticalPath, WalkMatchesHandComputedReference) {
    const auto summary = obs::analyze_critical_path(synthetic_pipeline());
    ASSERT_EQ(summary.steps, 4u);
    ASSERT_EQ(summary.per_step.size(), 4u);

    EXPECT_EQ(summary.per_step[0].step, 0u);
    EXPECT_EQ(summary.per_step[0].limiter, "sim#0");
    EXPECT_EQ(summary.per_step[0].segment, obs::SegmentKind::Compute);
    EXPECT_NEAR(summary.per_step[0].seconds, 0.009, 1e-12);

    EXPECT_EQ(summary.per_step[1].limiter, "mid#1");
    EXPECT_EQ(summary.per_step[1].segment, obs::SegmentKind::Compute);
    EXPECT_NEAR(summary.per_step[1].seconds, 0.008, 1e-12);

    EXPECT_EQ(summary.per_step[2].limiter, "mid#1");
    EXPECT_EQ(summary.per_step[2].segment, obs::SegmentKind::BackpressureOut);
    EXPECT_NEAR(summary.per_step[2].seconds, 0.007, 1e-12);

    EXPECT_EQ(summary.per_step[3].limiter, "sink#2");
    EXPECT_EQ(summary.per_step[3].segment, obs::SegmentKind::WaitIn);
    EXPECT_NEAR(summary.per_step[3].seconds, 0.005, 1e-12);

    // Aggregation: mid#1 limits 2 steps (median of 8ms/7ms = 7.5ms); ties
    // between sim#0 and sink#2 break by name.
    ASSERT_EQ(summary.by_instance.size(), 3u);
    EXPECT_EQ(summary.by_instance[0].instance, "mid#1");
    EXPECT_EQ(summary.by_instance[0].steps_limiting, 2u);
    EXPECT_NEAR(summary.by_instance[0].median_seconds, 0.0075, 1e-12);
    EXPECT_EQ(summary.by_instance[1].instance, "sim#0");
    EXPECT_EQ(summary.by_instance[2].instance, "sink#2");
}

TEST(CriticalPath, EmptyInputYieldsEmptySummary) {
    const auto summary = obs::analyze_critical_path({});
    EXPECT_EQ(summary.steps, 0u);
    EXPECT_TRUE(summary.per_step.empty());
    EXPECT_TRUE(summary.by_instance.empty());
    EXPECT_NE(obs::format_critical_path(summary).find("no step timelines"),
              std::string::npos);
}

TEST(CriticalPath, FormatAndJsonRenderTheSummary) {
    const auto summary = obs::analyze_critical_path(synthetic_pipeline());

    const std::string text = obs::format_critical_path(summary);
    EXPECT_NE(text.find("critical path over 4 step(s)"), std::string::npos);
    EXPECT_NE(text.find("mid#1"), std::string::npos);
    EXPECT_NE(text.find("limits   2/4 steps"), std::string::npos);
    EXPECT_NE(text.find("backpressure-out"), std::string::npos);

    const JsonValue doc = JsonParser(obs::critical_path_to_json(summary)).parse();
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    EXPECT_EQ(doc.find("steps")->number, 4.0);
    const JsonValue* by = doc.find("by_instance");
    ASSERT_NE(by, nullptr);
    ASSERT_EQ(by->arr.size(), 3u);
    EXPECT_EQ(by->arr[0].find("instance")->str, "mid#1");
    EXPECT_DOUBLE_EQ(by->arr[0].find("fraction")->number, 0.5);
    const JsonValue* per_step = doc.find("per_step");
    ASSERT_NE(per_step, nullptr);
    ASSERT_EQ(per_step->arr.size(), 4u);
    EXPECT_EQ(per_step->arr[3].find("segment")->str, "wait-in");
}

// ---- time series -----------------------------------------------------------

TEST(TimeSeries, RingOverwritesOldestAndDerivesRates) {
    obs::TimeSeries ts(4);
    EXPECT_EQ(ts.rate(), 0.0);  // empty
    ts.push(0.0, 0.0);
    EXPECT_EQ(ts.rate(), 0.0);  // single sample
    for (int i = 1; i <= 5; ++i) {
        ts.push(static_cast<double>(i), 2.0 * i);
    }
    EXPECT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts.capacity(), 4u);
    const auto samples = ts.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples.front().t, 2.0);  // oldest retained, in order
    EXPECT_EQ(samples.back().t, 5.0);
    EXPECT_DOUBLE_EQ(ts.last(), 10.0);
    EXPECT_DOUBLE_EQ(ts.rate(), 2.0);  // dv/dt over the window
}

TEST(TimeSeries, DegenerateTimeSpanHasZeroRate) {
    obs::TimeSeries ts(4);
    ts.push(1.0, 3.0);
    ts.push(1.0, 9.0);  // same timestamp
    EXPECT_EQ(ts.rate(), 0.0);
}

TEST(Sampler, SnapshotsSelectedCountersAndGauges) {
    auto& reg = obs::Registry::global();
    obs::set_enabled(true);
    obs::Counter& c = reg.counter("test.ts.steps", {{"stream", "s"}});
    obs::Gauge& g = reg.gauge("test.ts.depth");
    reg.histogram("test.ts.hist").observe(1.0);  // histograms are not sampled
    c.reset();

    obs::SamplerOptions opts;
    opts.include = {"test.ts.steps", "test.ts.depth"};
    obs::Sampler sampler(reg, opts);
    c.add(2);
    g.set(5.0);
    sampler.sample_now();
    c.add(3);
    g.set(7.0);
    sampler.sample_now();

    const auto series = sampler.snapshot();
    ASSERT_EQ(series.size(), 2u) << "include filter must drop everything else";
    for (const auto& s : series) {
        EXPECT_EQ(s.name.compare(0, 8, "test.ts."), 0);
        ASSERT_EQ(s.samples.size(), 2u);
        if (s.name == "test.ts.steps") {
            EXPECT_FALSE(s.is_gauge);
            EXPECT_DOUBLE_EQ(s.samples[0].v, 2.0);
            EXPECT_DOUBLE_EQ(s.last, 5.0);
            EXPECT_GT(s.rate, 0.0);
        } else {
            EXPECT_EQ(s.name, "test.ts.depth");
            EXPECT_TRUE(s.is_gauge);
            EXPECT_DOUBLE_EQ(s.last, 7.0);
        }
    }
    EXPECT_GE(sampler.elapsed_seconds(), 0.0);
}

TEST(Sampler, StopFlushesAFinalSample) {
    auto& reg = obs::Registry::global();
    obs::set_enabled(true);
    obs::Counter& c = reg.counter("test.ts.flush");
    c.reset();

    obs::SamplerOptions opts;
    opts.include = {"test.ts.flush"};
    opts.interval_ms = 3600000.0;  // only the initial tick fires on its own
    obs::Sampler sampler(reg, opts);
    sampler.start();
    EXPECT_TRUE(sampler.running());
    c.add(42);
    sampler.stop();  // joins the thread, then takes one final sample
    EXPECT_FALSE(sampler.running());

    const auto series = sampler.snapshot();
    ASSERT_EQ(series.size(), 1u);
    // A run shorter than the interval still ends with the counter's final
    // value captured: the flush sample must see the post-increment value.
    // (The background thread's own tick may or may not have fired first,
    // so only the flush sample is guaranteed.)
    EXPECT_DOUBLE_EQ(series[0].last, 42.0);
    EXPECT_GE(series[0].samples.size(), 1u);
}

TEST(Sampler, TimeseriesJsonIsWellFormed) {
    auto& reg = obs::Registry::global();
    obs::set_enabled(true);
    reg.counter("test.ts.json", {{"k", "v\"w"}}).inc();
    obs::SamplerOptions opts;
    opts.include = {"test.ts.json"};
    obs::Sampler sampler(reg, opts);
    sampler.sample_now();
    sampler.sample_now();

    const std::string json = obs::timeseries_to_json(sampler.snapshot(), 250.0);
    const JsonValue doc = JsonParser(json).parse();
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    EXPECT_EQ(doc.find("interval_ms")->number, 250.0);
    const JsonValue* series = doc.find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->arr.size(), 1u);
    const JsonValue& s = series->arr[0];
    EXPECT_EQ(s.find("name")->str, "test.ts.json");
    EXPECT_EQ(s.find("labels")->find("k")->str, "v\"w");
    EXPECT_EQ(s.find("type")->str, "counter");
    ASSERT_EQ(s.find("samples")->arr.size(), 2u);
    EXPECT_EQ(s.find("samples")->arr[0].find("v")->number, 1.0);
}

// ---- end-to-end: a real 3-component pipeline -------------------------------

// gromacs -> magnitude -> histogram with a deliberately heavy source (many
// substeps) and a queue deep enough that nothing backpressures: the source's
// kernel is the limiter, so the sink's wait-in walks upstream to gromacs#0
// and the verdict is "compute".
class SpanPipeline : public ::testing::Test {
protected:
    void SetUp() override {
        sb::sim::register_simulations();
        obs::set_enabled(true);
        obs::SpanStore::global().clear();
        obs::TraceLog::global().clear();

        fp::StreamOptions opts;
        opts.queue_capacity = 64;
        wf_.emplace(fabric_, opts);
        // These tests assert the *unfused* transport topology (a span
        // timeline per stream, a flow arrow per hop); pin fusion off so
        // magnitude -> histogram keeps materializing m.fp.
        wf_->set_fusion(core::FusionMode::Off);
        wf_->add("gromacs", 1, {"atoms=16384", "steps=4", "substeps=24"});
        wf_->add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "r"});
        wf_->add("histogram", 1, {"m.fp", "r", "8", tmp("span_hist.txt")});
        wf_->run();
    }

    fp::Fabric fabric_;
    std::optional<core::Workflow> wf_;
};

TEST_F(SpanPipeline, CriticalPathNamesTheHeavySourceAsLimiter) {
    const obs::CriticalPathSummary cp = wf_->critical_path();
    ASSERT_EQ(cp.steps, 4u);
    ASSERT_FALSE(cp.by_instance.empty());
    // With a source 2 orders of magnitude heavier than the analysis stages
    // and no backpressure, every walk must end at gromacs#0/compute; allow
    // one scheduler-noise step before calling it a failure.
    EXPECT_EQ(cp.by_instance[0].instance, "gromacs#0");
    EXPECT_EQ(cp.by_instance[0].segment, obs::SegmentKind::Compute);
    EXPECT_GE(cp.by_instance[0].steps_limiting, 3u);
    EXPECT_GT(cp.by_instance[0].median_seconds, 0.0);
    for (const obs::CriticalPathEntry& e : cp.per_step) {
        EXPECT_FALSE(e.limiter.empty());
        EXPECT_GT(e.seconds, 0.0);
    }

    const std::string report = wf_->report();
    EXPECT_NE(report.find("gromacs#0"), std::string::npos);
    EXPECT_NE(report.find("compute"), std::string::npos);

    const std::string summary = wf_->metrics_summary();
    EXPECT_NE(summary.find("workflow.critical_path"), std::string::npos);
    EXPECT_NE(summary.find("uptime"), std::string::npos);
}

TEST_F(SpanPipeline, SpanStoreHoldsEveryTransportAndComputeSegment) {
    auto& store = obs::SpanStore::global();
    // Transport scopes: both streams; compute scopes: all three instances.
    for (const char* scope : {"gmx.fp", "m.fp"}) {
        const auto timelines = store.timelines(scope);
        ASSERT_EQ(timelines.size(), 4u) << scope;
        for (const auto& tl : timelines) {
            bool produce = false, wait_in = false, consume = false;
            for (const auto& seg : tl.segments) {
                if (seg.kind == obs::SegmentKind::Produce) produce = true;
                if (seg.kind == obs::SegmentKind::WaitIn) wait_in = true;
                if (seg.kind == obs::SegmentKind::Consume) consume = true;
                EXPECT_GE(seg.seconds(), 0.0);
            }
            EXPECT_TRUE(produce) << scope << " step " << tl.step;
            EXPECT_TRUE(wait_in) << scope << " step " << tl.step;
            EXPECT_TRUE(consume) << scope << " step " << tl.step;
        }
    }
    for (std::size_t i = 0; i < wf_->size(); ++i) {
        const auto timelines = store.timelines(wf_->instance_label(i));
        EXPECT_EQ(timelines.size(), 4u) << wf_->instance_label(i);
        for (const auto& tl : timelines) {
            ASSERT_FALSE(tl.segments.empty());
            EXPECT_EQ(tl.segments[0].kind, obs::SegmentKind::Compute);
        }
    }
    // The reader threads ran under a ScopedActor: wait-in segments on the
    // first stream carry the consuming instance's label.
    bool labelled = false;
    for (const auto& tl : store.timelines("gmx.fp")) {
        for (const auto& seg : tl.segments) {
            if (seg.kind == obs::SegmentKind::WaitIn &&
                seg.actor == "magnitude#1") {
                labelled = true;
            }
        }
    }
    EXPECT_TRUE(labelled);
}

TEST_F(SpanPipeline, FlowEventsConnectProducerToConsumerPerStep) {
    const std::string trace_path = tmp("span_trace.json");
    wf_->write_trace(trace_path);
    const JsonValue trace = parse_json_file(trace_path);
    ASSERT_EQ(trace.kind, JsonValue::Kind::Array);

    struct Slice {
        double pid, tid, t0, t1;
    };
    struct Flow {
        double pid, tid, ts, id;
    };
    std::vector<Slice> slices;
    std::vector<Flow> starts, finishes;
    for (const JsonValue& ev : trace.arr) {
        const JsonValue* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "X") {
            slices.push_back(Slice{ev.find("pid")->number, ev.find("tid")->number,
                                   ev.find("ts")->number,
                                   ev.find("ts")->number + ev.find("dur")->number});
        } else if (ph->str == "s" || ph->str == "f") {
            ASSERT_EQ(ev.find("cat")->str, "step-flow");
            const Flow f{ev.find("pid")->number, ev.find("tid")->number,
                         ev.find("ts")->number, ev.find("id")->number};
            if (ph->str == "s") {
                starts.push_back(f);
            } else {
                EXPECT_EQ(ev.find("bp")->str, "e");
                finishes.push_back(f);
            }
        }
    }

    // One flow arrow per (stream, step): 2 streams x 4 steps.
    ASSERT_EQ(starts.size(), 8u);
    ASSERT_EQ(finishes.size(), 8u);
    const auto inside_slice = [&](const Flow& f) {
        for (const Slice& s : slices) {
            if (s.pid == f.pid && s.tid == f.tid && f.ts >= s.t0 - 0.5 &&
                f.ts <= s.t1 + 0.5) {
                return true;
            }
        }
        return false;
    };
    for (std::size_t i = 0; i < starts.size(); ++i) {
        // Chrome binds an "s" to the "f" with the same id; every id pairs
        // exactly once, and the arrow crosses between two distinct tracks.
        std::size_t matches = 0, match = 0;
        for (std::size_t j = 0; j < finishes.size(); ++j) {
            if (finishes[j].id == starts[i].id) {
                ++matches;
                match = j;
            }
        }
        ASSERT_EQ(matches, 1u) << "flow id " << starts[i].id;
        EXPECT_NE(starts[i].pid, finishes[match].pid);
        EXPECT_LE(starts[i].ts, finishes[match].ts)
            << "a step cannot be consumed before it was published";
        // Both endpoints land inside a slice on their own track, so the
        // arrow attaches to the publish / acquire boxes in the viewer.
        EXPECT_TRUE(inside_slice(starts[i])) << "flow id " << starts[i].id;
        EXPECT_TRUE(inside_slice(finishes[match])) << "flow id " << starts[i].id;
    }
}

TEST_F(SpanPipeline, MetricsJsonEmbedsCriticalPathAndTimeseries) {
    obs::SamplerOptions opts;
    opts.include = {"adios.", "flexpath."};
    obs::Sampler sampler(obs::Registry::global(), opts);
    sampler.sample_now();
    sampler.sample_now();
    wf_->attach_sampler(&sampler);

    const std::string path = tmp("span_metrics.json");
    wf_->write_metrics(path);
    wf_->attach_sampler(nullptr);

    const JsonValue doc = parse_json_file(path);
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_NE(doc.find("metrics"), nullptr);

    const JsonValue* cp = doc.find("critical_path");
    ASSERT_NE(cp, nullptr) << "write_metrics must embed the critical_path block";
    EXPECT_EQ(cp->find("steps")->number, 4.0);
    ASSERT_FALSE(cp->find("by_instance")->arr.empty());
    EXPECT_EQ(cp->find("by_instance")->arr[0].find("instance")->str, "gromacs#0");

    const JsonValue* ts = doc.find("timeseries");
    ASSERT_NE(ts, nullptr) << "an attached sampler must embed the timeseries block";
    ASSERT_NE(ts->find("series"), nullptr);
    EXPECT_FALSE(ts->find("series")->arr.empty());
}

// With SB_METRICS off the span layer records nothing and the analyzer says
// so instead of inventing a path.
TEST(SpanPipelineOff, DisabledMetricsYieldEmptyCriticalPath) {
    EnabledGuard guard;
    sb::sim::register_simulations();
    obs::set_enabled(false);
    obs::SpanStore::global().clear();

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=1024", "steps=2", "substeps=1"});
    wf.add("magnitude", 1, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "8", tmp("span_hist_off.txt")});
    wf.run();

    const obs::CriticalPathSummary cp = wf.critical_path();
    EXPECT_EQ(cp.steps, 0u);
    EXPECT_NE(wf.report().find("no step timelines"), std::string::npos);
    EXPECT_TRUE(obs::SpanStore::global().timelines("gmx.fp").empty());
}

}  // namespace
