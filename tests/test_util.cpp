// Tests for the utility layer: argument parsing, statistics, logging
// configuration, and the bounded blocking queue that underlies FlexPath's
// writer-side buffering.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/argparse.hpp"
#include "util/logging.hpp"
#include "util/queue.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace u = sb::util;

// ---- ArgList ---------------------------------------------------------------

TEST(ArgList, PositionalAccess) {
    const u::ArgList args({"stream.fp", "atoms", "3", "-2", "2.5"});
    EXPECT_EQ(args.size(), 5u);
    EXPECT_EQ(args.str(0, "s"), "stream.fp");
    EXPECT_EQ(args.integer(2, "i"), 3);
    EXPECT_EQ(args.integer(3, "i"), -2);
    EXPECT_EQ(args.unsigned_integer(2, "u"), 3u);
    EXPECT_DOUBLE_EQ(args.real(4, "r"), 2.5);
}

TEST(ArgList, MissingArgumentNamesParameter) {
    const u::ArgList args({"only"});
    try {
        (void)args.str(1, "output-stream-name");
        FAIL() << "expected ArgError";
    } catch (const u::ArgError& e) {
        EXPECT_NE(std::string(e.what()).find("output-stream-name"), std::string::npos);
    }
}

TEST(ArgList, BadIntegerThrows) {
    const u::ArgList args({"3x"});
    EXPECT_THROW((void)args.integer(0, "n"), u::ArgError);
    EXPECT_THROW((void)args.real(0, "n"), u::ArgError);
}

TEST(ArgList, NegativeUnsignedThrows) {
    const u::ArgList args({"-1"});
    EXPECT_THROW((void)args.unsigned_integer(0, "n"), u::ArgError);
}

TEST(ArgList, Rest) {
    const u::ArgList args({"a", "b", "c"});
    EXPECT_EQ(args.rest(1), (std::vector<std::string>{"b", "c"}));
    EXPECT_TRUE(args.rest(3).empty());
    EXPECT_TRUE(args.rest(99).empty());
}

TEST(ArgList, RequireAtLeastIncludesUsage) {
    const u::ArgList args({"a"});
    try {
        args.require_at_least(3, "select in out ...");
        FAIL();
    } catch (const u::ArgError& e) {
        EXPECT_NE(std::string(e.what()).find("select in out"), std::string::npos);
    }
}

TEST(ArgList, SplitOnWhitespace) {
    const u::ArgList args = u::ArgList::split("  select  a\tb \n c ");
    EXPECT_EQ(args.raw(), (std::vector<std::string>{"select", "a", "b", "c"}));
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, Summary) {
    const double xs[] = {1.0, 2.0, 3.0, 4.0};
    const auto s = u::summarize(xs);
    EXPECT_EQ(s.n, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, 1.1180339887, 1e-9);
}

TEST(Stats, EmptySummaryIsZero) {
    const auto s = u::summarize({});
    EXPECT_EQ(s.n, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, Percentile) {
    const double xs[] = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(u::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(u::percentile(xs, 100), 4.0);
    EXPECT_DOUBLE_EQ(u::percentile(xs, 50), 2.5);
}

TEST(Stats, Formatting) {
    EXPECT_EQ(u::format_bytes(512), "512.0 B");
    EXPECT_EQ(u::format_bytes(2048), "2.0 KB");
    EXPECT_EQ(u::format_rate(3.0 * 1024 * 1024), "3.0 MB/s");
}

// ---- logging ---------------------------------------------------------------

TEST(Logging, ParseLevels) {
    EXPECT_EQ(u::parse_log_level("debug"), u::LogLevel::Debug);
    EXPECT_EQ(u::parse_log_level("WARN"), u::LogLevel::Warn);
    EXPECT_EQ(u::parse_log_level("off"), u::LogLevel::Off);
    EXPECT_THROW((void)u::parse_log_level("loud"), std::invalid_argument);
}

TEST(Logging, SetAndGet) {
    const auto prev = u::log_level();
    u::set_log_level(u::LogLevel::Error);
    EXPECT_EQ(u::log_level(), u::LogLevel::Error);
    EXPECT_FALSE(SB_LOG_ENABLED(Debug));
    EXPECT_TRUE(SB_LOG_ENABLED(Error));
    u::set_log_level(prev);
}

// ---- WallTimer -------------------------------------------------------------

TEST(WallTimer, MeasuresElapsed) {
    u::WallTimer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(t.millis(), 5.0);
    t.reset();
    EXPECT_LT(t.millis(), 5.0);
}

// ---- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, FifoOrder) {
    u::BoundedQueue<int> q(4);
    for (int i = 0; i < 4; ++i) q.push(i);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, TryPopEmpty) {
    u::BoundedQueue<int> q(2);
    EXPECT_FALSE(q.try_pop().has_value());
    q.push(1);
    EXPECT_EQ(q.try_pop(), 1);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
    u::BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_THROW(q.push(3), u::QueueAborted);  // typed rejection after close
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_FALSE(q.pop().has_value());  // end of stream
}

TEST(BoundedQueue, CapacityBlocksProducer) {
    u::BoundedQueue<int> q(1);
    q.push(1);
    std::atomic<bool> second_pushed{false};
    std::jthread producer([&] {
        q.push(2);
        second_pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed.load());  // blocked on the full queue
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, RendezvousBlocksUntilConsumed) {
    u::BoundedQueue<int> q(0);
    std::atomic<bool> push_returned{false};
    std::jthread producer([&] {
        q.push(7);
        push_returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(push_returned.load());  // waiting for the consumer
    EXPECT_EQ(q.pop(), 7);
    // After the pop, the producer must complete promptly.
    for (int i = 0; i < 500 && !push_returned.load(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(push_returned.load());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
    u::BoundedQueue<int> q(2);
    std::jthread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        q.close();
    });
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockedPushTimeAccumulatesWhenBounded) {
    u::BoundedQueue<int> q(1);
    EXPECT_EQ(q.blocked_push_seconds(), 0.0);
    EXPECT_EQ(q.blocked_pushes(), 0u);
    q.push(1);  // fits: no blocking recorded
    EXPECT_EQ(q.blocked_pushes(), 0u);

    std::jthread producer([&] { q.push(2); });  // blocks on the full queue
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop(), 1);  // slow consumer finally drains
    EXPECT_EQ(q.pop(), 2);
    producer.join();

    EXPECT_GE(q.blocked_pushes(), 1u);
    EXPECT_GT(q.blocked_push_seconds(), 0.0);
}

TEST(BoundedQueue, BlockedPushTimeAccumulatesInRendezvousMode) {
    u::BoundedQueue<int> q(0);
    std::jthread producer([&] { q.push(7); });  // must wait for the pop
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(q.pop(), 7);
    producer.join();

    EXPECT_GE(q.blocked_pushes(), 1u);
    // The producer waited for the consumer's pop (~20 ms); the accounting
    // must show a nonzero fraction of it.
    EXPECT_GT(q.blocked_push_seconds(), 0.001);
}

TEST(BoundedQueue, BlockedPopTimeAccumulates) {
    u::BoundedQueue<int> q(2);
    EXPECT_EQ(q.blocked_pop_seconds(), 0.0);
    std::jthread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.push(1);
    });
    EXPECT_EQ(q.pop(), 1);  // blocks until the slow producer delivers
    producer.join();

    EXPECT_GE(q.blocked_pops(), 1u);
    EXPECT_GT(q.blocked_pop_seconds(), 0.001);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
    u::BoundedQueue<int> q(3);
    constexpr int kPerProducer = 50;
    constexpr int kProducers = 4;
    std::atomic<int> sum{0};
    std::atomic<int> popped{0};
    {
        std::vector<std::jthread> threads;
        for (int p = 0; p < kProducers; ++p) {
            threads.emplace_back([&q, p] {
                for (int i = 0; i < kPerProducer; ++i) {
                    q.push(p * kPerProducer + i);
                }
            });
        }
        for (int c = 0; c < 3; ++c) {
            threads.emplace_back([&] {
                while (auto v = q.pop()) {
                    sum += *v;
                    ++popped;
                }
            });
        }
        // Close once all producers finished.
        threads.emplace_back([&] {
            while (popped.load() + static_cast<int>(q.size()) <
                   kProducers * kPerProducer) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            q.close();
        });
    }
    const int n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}
