// Golden-diagnostic tests for the static workflow contract analyzer
// (src/lint): every rule ID is pinned against a committed trigger script in
// examples/lint/ — rule, severity, and launch-script line anchor — so a
// diagnostic can't silently change identity or drift off its source line.
// Also covered: exit-code semantics (0/1/2, --strict), JSON rendering
// (parsed, not grepped), allow-list suppression, lint-config directives,
// the Workflow::run fail-fast gate, and that the shipped evaluation
// workflows (Figs. 5-7) lint clean with fusion notes matching the real
// planner.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "core/component.hpp"
#include "core/launch_script.hpp"
#include "core/registry.hpp"
#include "core/workflow.hpp"
#include "json_test_util.hpp"
#include "lint/lint.hpp"
#include "sim/source_component.hpp"

namespace core = sb::core;
namespace lint = sb::lint;
namespace sim = sb::sim;
namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

std::string slurp(const std::string& rel) {
    std::ifstream in(std::string(SB_REPO_DIR) + "/" + rel);
    EXPECT_TRUE(in.good()) << "cannot open " << rel;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

lint::Result lint_file(const std::string& rel, const lint::Options& opts = {}) {
    sim::register_simulations();
    return lint::lint_script(slurp(rel), opts);
}

const lint::Diagnostic* find_rule(const lint::Result& r, const std::string& rule) {
    for (const auto& d : r.diagnostics)
        if (d.rule == rule) return &d;
    return nullptr;
}

}  // namespace

// ---- golden diagnostics: one committed trigger script per rule -----------

struct Golden {
    const char* file;
    const char* rule;
    lint::Severity severity;
    std::size_t line;  // 0 = workflow-wide (config rules)
    int exit_plain;
};

class LintGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(LintGolden, TriggerScriptFiresRuleAtLine) {
    const Golden& g = GetParam();
    const lint::Result r = lint_file(std::string("examples/lint/") + g.file);
    const lint::Diagnostic* d = find_rule(r, g.rule);
    ASSERT_NE(d, nullptr) << g.file << " did not fire " << g.rule << ":\n"
                          << lint::render_text(r);
    EXPECT_EQ(d->severity, g.severity) << g.file;
    EXPECT_EQ(d->line, g.line) << g.file;
    EXPECT_EQ(lint::exit_code(r), g.exit_plain) << g.file;
    // --strict escalates warnings (but never notes) to the error exit code.
    EXPECT_EQ(lint::exit_code(r, true), g.exit_plain == 0 ? 0 : 2) << g.file;
}

INSTANTIATE_TEST_SUITE_P(
    Rules, LintGolden,
    ::testing::Values(
        Golden{"dangling_input_bad.sh", "graph-dangling-input",
               lint::Severity::Error, 5, 2},
        Golden{"unconsumed_output_bad.sh", "graph-unconsumed-output",
               lint::Severity::Warning, 3, 1},
        Golden{"multiple_writers_bad.sh", "graph-multiple-writers",
               lint::Severity::Error, 4, 2},
        Golden{"multiple_readers_bad.sh", "graph-multiple-readers",
               lint::Severity::Error, 6, 2},
        Golden{"shape_rank_bad.sh", "shape-rank-mismatch",
               lint::Severity::Error, 5, 2},
        Golden{"shape_array_bad.sh", "shape-array-mismatch",
               lint::Severity::Error, 4, 2},
        Golden{"shape_dim_bad.sh", "shape-dim-out-of-range",
               lint::Severity::Error, 4, 2},
        Golden{"shape_bad_param_bad.sh", "shape-bad-param",
               lint::Severity::Error, 5, 2},
        Golden{"shape_validate_bad.sh", "shape-validate-mismatch",
               lint::Severity::Error, 7, 2},
        Golden{"rank_unsolvable_bad.sh", "shape-rank-unsolvable",
               lint::Severity::Error, 7, 2},
        Golden{"attr_header_missing_bad.sh", "attr-header-missing",
               lint::Severity::Error, 5, 2},
        Golden{"attr_header_name_bad.sh", "attr-header-name",
               lint::Severity::Error, 4, 2},
        Golden{"attr_header_dropped_bad.sh", "attr-header-dropped",
               lint::Severity::Error, 7, 2},
        Golden{"config_replay_bad.sh", "config-replay-impossible",
               lint::Severity::Warning, 0, 1},
        Golden{"config_durable_volatile_bad.sh", "config-durable-volatile",
               lint::Severity::Warning, 0, 1},
        Golden{"config_zerofill_validate_bad.sh", "config-zerofill-validate",
               lint::Severity::Warning, 8, 1},
        Golden{"config_liveness_bad.sh", "config-liveness-fault-delay",
               lint::Severity::Warning, 0, 1}),
    [](const ::testing::TestParamInfo<Golden>& info) {
        std::string n = info.param.rule;
        for (char& c : n)
            if (c == '-') c = '_';
        return n;
    });

// Each *_bad.sh trigger has a *_ok.sh counterpart (or a config/allow
// positive) that must be completely clean, even under --strict.
TEST(LintGoldenOk, PositiveCounterpartsAreClean) {
    for (const char* f :
         {"dangling_input_ok.sh", "unconsumed_output_ok.sh",
          "multiple_writers_ok.sh", "multiple_readers_ok.sh", "shape_rank_ok.sh",
          "shape_validate_ok.sh", "rank_unsolvable_ok.sh", "attr_header_ok.sh",
          "config_ok.sh", "config_replay_ok.sh", "config_durable_volatile_ok.sh",
          "allow_suppress_ok.sh"}) {
        const lint::Result r = lint_file(std::string("examples/lint/") + f);
        EXPECT_TRUE(r.clean()) << f << ":\n" << lint::render_text(r);
        EXPECT_EQ(lint::exit_code(r, /*strict=*/true), 0) << f;
    }
}

// ---- diagnostics carry actionable detail ---------------------------------

TEST(LintDetail, DanglingInputSuggestsNearestStream) {
    const lint::Result r = lint_file("examples/lint/dangling_input_bad.sh");
    const lint::Diagnostic* d = find_rule(r, "graph-dangling-input");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->hint.find("velos.fp"), std::string::npos) << d->hint;
    // The typo'd writer output is also flagged as unconsumed.
    const lint::Diagnostic* w = find_rule(r, "graph-unconsumed-output");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->severity, lint::Severity::Warning);
}

TEST(LintDetail, ArrayMismatchNamesTheWritersArray) {
    const lint::Result r = lint_file("examples/lint/shape_array_bad.sh");
    const lint::Diagnostic* d = find_rule(r, "shape-array-mismatch");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->hint.find("coords"), std::string::npos) << d->hint;
}

TEST(LintDetail, RankMismatchShowsConcreteShape) {
    const lint::Result r = lint_file("examples/lint/shape_rank_bad.sh");
    const lint::Diagnostic* d = find_rule(r, "shape-rank-mismatch");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("[256, 3]"), std::string::npos) << d->message;
}

TEST(LintDetail, HeaderNameListsAvailableQuantities) {
    const lint::Result r = lint_file("examples/lint/attr_header_name_bad.sh");
    const lint::Diagnostic* d = find_rule(r, "attr-header-name");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("vorticity"), std::string::npos) << d->message;
    EXPECT_NE(d->message.find("potential"), std::string::npos) << d->message;
}

TEST(LintDetail, RankUnsolvableCitesBothConstraintSites) {
    const lint::Result r = lint_file("examples/lint/rank_unsolvable_bad.sh");
    const lint::Diagnostic* d = find_rule(r, "shape-rank-unsolvable");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("histogram"), std::string::npos) << d->message;
    EXPECT_NE(d->message.find("magnitude"), std::string::npos) << d->message;
}

TEST(LintDetail, ValidateMismatchReportsProvablyDifferentDim) {
    const lint::Result r = lint_file("examples/lint/shape_validate_bad.sh");
    const lint::Diagnostic* d = find_rule(r, "shape-validate-mismatch");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("1 vs 2"), std::string::npos) << d->message;
}

// ---- inline wiring rules (no component contract needed) ------------------

TEST(LintWiring, CycleDetected) {
    const lint::Result r = lint::lint_script(
        "aprun -n 1 magnitude a.fp x b.fp y &\n"
        "aprun -n 1 magnitude b.fp y a.fp x &\n"
        "wait\n");
    const lint::Diagnostic* d = find_rule(r, "graph-cycle");
    ASSERT_NE(d, nullptr) << lint::render_text(r);
    EXPECT_EQ(d->severity, lint::Severity::Error);
    EXPECT_EQ(lint::exit_code(r), 2);
}

TEST(LintWiring, UnknownComponentIsBadArguments) {
    const lint::Result r = lint::lint_script("aprun -n 1 nosuch-component a b &\nwait\n");
    const lint::Diagnostic* d = find_rule(r, "graph-bad-arguments");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 1u);
    EXPECT_NE(d->message.find("nosuch-component"), std::string::npos);
}

TEST(LintWiring, ArgErrorSurfacesWithComponentUsage) {
    // histogram with a single argument: ports() itself rejects the args.
    const lint::Result r = lint::lint_script("aprun -n 1 histogram only &\nwait\n");
    const lint::Diagnostic* d = find_rule(r, "graph-bad-arguments");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Error);
}

TEST(LintWiring, OpaquePortsIsANoteOnly) {
    // A third-party component that never overrides ports(): the analyzer
    // reports it can't see through the instance, but does not fail the lint.
    struct OpaqueComponent : core::Component {
        std::string name() const override { return "test-opaque"; }
        std::string usage() const override { return "test-opaque"; }
        void run(core::RunContext&, const u::ArgList&) override {}
    };
    core::register_component("test-opaque",
                             [] { return std::make_unique<OpaqueComponent>(); });
    const lint::Result r = lint::lint_script("aprun -n 1 test-opaque &\nwait\n");
    const lint::Diagnostic* d = find_rule(r, "graph-opaque-ports");
    ASSERT_NE(d, nullptr) << lint::render_text(r);
    EXPECT_EQ(d->severity, lint::Severity::Note);
    EXPECT_EQ(lint::exit_code(r), 0);
    EXPECT_EQ(lint::exit_code(r, /*strict=*/true), 0);
}

TEST(LintWiring, MalformedScriptBecomesDiagnosticNotException) {
    const lint::Result r = lint::lint_script("aprun -n zero histogram a b 4 &\n");
    EXPECT_GE(r.errors, 1u);
    EXPECT_NE(find_rule(r, "graph-bad-arguments"), nullptr);
}

// ---- lint-config directives and allow-list -------------------------------

TEST(LintConfig, BadDirectiveValueIsAnError) {
    const lint::Result r = lint::lint_script(
        "# lint-config: on-data-loss=sometimes\n"
        "aprun -n 1 gromacs atoms=16 steps=1 &\n"
        "aprun -n 1 moments gmx.fp coords &\n"
        "wait\n");
    const lint::Diagnostic* d = find_rule(r, "graph-bad-arguments");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->line, 1u);
    EXPECT_NE(d->message.find("lint-config"), std::string::npos);
}

TEST(LintConfig, AllowOptionSuppressesRule) {
    sim::register_simulations();
    const std::string text = slurp("examples/lint/unconsumed_output_bad.sh");
    ASSERT_FALSE(lint::lint_script(text).clean());
    lint::Options opts;
    opts.allow.insert("graph-unconsumed-output");
    const lint::Result r = lint::lint_script(text, opts);
    EXPECT_TRUE(r.clean()) << lint::render_text(r);
}

TEST(LintConfig, FaultSpecParserSkipsSeedEntries) {
    const auto specs = lint::parse_fault_specs("seed=7; flexpath.acquire=delay:50");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].point, "flexpath.acquire");
    EXPECT_THROW((void)lint::parse_fault_specs("not a spec"), std::invalid_argument);
}

// ---- renderers -----------------------------------------------------------

TEST(LintRender, TextCarriesSourceRuleAndTotals) {
    const lint::Result r = lint_file("examples/lint/dangling_input_bad.sh");
    const std::string text = lint::render_text(r, "dangling_input_bad.sh");
    EXPECT_NE(text.find("dangling_input_bad.sh:5"), std::string::npos) << text;
    EXPECT_NE(text.find("[graph-dangling-input]"), std::string::npos) << text;
    EXPECT_NE(text.find("hint:"), std::string::npos) << text;
    EXPECT_NE(text.find("1 error, 1 warning, 0 notes"), std::string::npos) << text;
}

TEST(LintRender, JsonParsesAndMatchesCounts) {
    const lint::Result r = lint_file("examples/lint/dangling_input_bad.sh");
    const auto doc = jsonutil::JsonParser(lint::render_json(r)).parse();
    ASSERT_EQ(doc.kind, jsonutil::JsonValue::Kind::Object);
    EXPECT_EQ(doc.find("errors")->number, static_cast<double>(r.errors));
    EXPECT_EQ(doc.find("warnings")->number, static_cast<double>(r.warnings));
    EXPECT_EQ(doc.find("exit_code")->number, 2.0);
    const auto* diags = doc.find("diagnostics");
    ASSERT_NE(diags, nullptr);
    ASSERT_EQ(diags->arr.size(), r.diagnostics.size());
    const auto& first = diags->arr.front();
    EXPECT_EQ(first.find("rule")->str, r.diagnostics.front().rule);
    EXPECT_EQ(first.find("severity")->str, "error");
    EXPECT_EQ(first.find("line")->number,
              static_cast<double>(r.diagnostics.front().line));
}

TEST(LintRender, DotAnnotationsColorOffendingNodes) {
    sim::register_simulations();
    const auto entries =
        core::parse_launch_script(slurp("examples/lint/dangling_input_bad.sh"));
    const lint::Result r = lint::lint_entries(entries);
    const auto ann = lint::dot_annotations(entries, r);
    ASSERT_FALSE(ann.empty());
    bool red = false;
    for (const auto& a : ann) red = red || a.color == "red";
    EXPECT_TRUE(red);
    const std::string dot = core::graph_to_dot(entries, ann);
    EXPECT_NE(dot.find("fillcolor=\"red\""), std::string::npos) << dot;
    EXPECT_NE(dot.find("[graph-dangling-input]"), std::string::npos) << dot;
}

TEST(LintRender, DotEscapesLabelMetacharacters) {
    EXPECT_EQ(core::dot_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---- shipped evaluation workflows lint clean, notes match the planner ----

TEST(LintWorkflows, ShippedScriptsAreErrorAndWarningFree) {
    for (const char* f : {"examples/workflows/lammps_crack.sh",
                          "examples/workflows/gtcp_pressure.sh",
                          "examples/workflows/gromacs_spread.sh"}) {
        const lint::Result r = lint_file(f);
        EXPECT_TRUE(r.clean()) << f << ":\n" << lint::render_text(r);
        EXPECT_EQ(lint::exit_code(r, /*strict=*/true), 0) << f;
    }
}

TEST(LintWorkflows, FusionNotesMatchThePlanner) {
    sim::register_simulations();
    for (const char* f : {"examples/workflows/lammps_crack.sh",
                          "examples/workflows/gtcp_pressure.sh",
                          "examples/workflows/gromacs_spread.sh"}) {
        const auto entries = core::parse_launch_script(slurp(f));
        lint::Options opts;
        opts.fusion = core::FusionMode::On;
        const lint::Result r = lint::lint_entries(entries, opts);

        fp::Fabric fabric;
        core::Workflow wf(fabric);
        for (const auto& e : entries) wf.add(e.component, e.nprocs, e.args, e.line);
        wf.set_fusion(core::FusionMode::On);
        const core::FusionPlan plan = wf.fusion_plan();

        std::size_t chain_notes = 0, boundary_notes = 0;
        for (const auto& d : r.diagnostics) {
            if (d.rule == "fusion-chain") ++chain_notes;
            if (d.rule == "fusion-boundary") ++boundary_notes;
        }
        EXPECT_EQ(chain_notes, plan.chains.size()) << f;
        EXPECT_EQ(boundary_notes, plan.notes.size()) << f;
    }
}

TEST(LintWorkflows, FusionOffSuppressesNotes) {
    sim::register_simulations();
    const auto entries = core::parse_launch_script(
        slurp("examples/workflows/gromacs_spread.sh"));
    lint::Options opts;
    opts.fusion = core::FusionMode::Off;
    const lint::Result r = lint::lint_entries(entries, opts);
    EXPECT_EQ(find_rule(r, "fusion-chain"), nullptr);
    EXPECT_EQ(find_rule(r, "fusion-boundary"), nullptr);
}

// ---- Workflow::run fail-fast gate ----------------------------------------

TEST(LintWorkflowGate, MiswiredGraphFailsFastInsteadOfHanging) {
    // In the seed a reader on a never-written stream blocks forever; with
    // the gate on, run() throws before any instance launches.
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("histogram", 1, {"nosuch.fp", "vals", "8"}, 3);
    wf.set_lint(core::LintMode::On);
    try {
        wf.run();
        FAIL() << "expected lint::LintError";
    } catch (const lint::LintError& e) {
        EXPECT_NE(std::string(e.what()).find("mis-wired"), std::string::npos);
        const lint::Diagnostic* d = find_rule(e.result(), "graph-dangling-input");
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->line, 3u);
    }
}

TEST(LintWorkflowGate, WiringSubsetExcludesContractAndArgumentRules) {
    // The fail-fast gate must not intercept what the seed reports itself:
    // bad arguments keep coming from the component as util::ArgError, and
    // contract violations (histogram on a 2-D array) stay runtime errors.
    const auto entries = core::parse_launch_script(
        "aprun -n 1 gromacs atoms=16 steps=1 &\n"
        "aprun -n 1 histogram gmx.fp coords 8 &\n"  // rank error at runtime
        "aprun -n 1 histogram only &\n"             // ArgError at add/run
        "wait\n");
    const lint::Result wiring = lint::lint_wiring(entries);
    EXPECT_EQ(wiring.errors, 0u) << lint::render_text(wiring);
    // The full analyzer does see both problems.
    const lint::Result full = lint::lint_entries(entries);
    EXPECT_NE(find_rule(full, "graph-bad-arguments"), nullptr);
}

TEST(LintWorkflowGate, CleanPipelineRunsWithGateOnAndOff) {
    sim::register_simulations();
    for (const core::LintMode mode : {core::LintMode::On, core::LintMode::Off}) {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("gromacs", 1, {"atoms=32", "steps=2"});
        wf.add("magnitude", 1, {"gmx.fp", "coords", "radii.fp", "radii"});
        wf.add("histogram", 1, {"radii.fp", "radii", "8"});
        wf.set_lint(mode);
        EXPECT_NO_THROW(wf.run());
    }
}

// ---- environment gate ----------------------------------------------------

TEST(LintEnv, ModeAndEnvResolution) {
    EXPECT_TRUE(lint::lint_enabled(core::LintMode::On));
    EXPECT_FALSE(lint::lint_enabled(core::LintMode::Off));

    ::setenv("SB_LINT", "off", 1);
    EXPECT_FALSE(lint::lint_enabled_from_env());
    EXPECT_FALSE(lint::lint_enabled(core::LintMode::Auto));
    EXPECT_TRUE(lint::lint_enabled(core::LintMode::On));  // pin beats env
    ::setenv("SB_LINT", "0", 1);
    EXPECT_FALSE(lint::lint_enabled_from_env());
    ::setenv("SB_LINT", "on", 1);
    EXPECT_TRUE(lint::lint_enabled_from_env());
    ::unsetenv("SB_LINT");
    EXPECT_TRUE(lint::lint_enabled_from_env());
    EXPECT_TRUE(lint::lint_enabled(core::LintMode::Auto));
}

// ---- contract coverage audit ---------------------------------------------

// Every registered component must expose a non-opaque contract for
// representative arguments: a component whose contract() silently regresses
// to the opaque default would turn whole downstream subgraphs unanalyzable.
TEST(LintContracts, AllRegisteredComponentsDeclareContracts) {
    sim::register_simulations();
    core::register_builtin_components();
    const std::map<std::string, std::vector<std::string>> rep = {
        {"all-pairs", {"in.fp", "a", "out.fp", "b"}},
        {"dim-reduce", {"in.fp", "a", "0", "1", "out.fp", "b"}},
        {"downsample", {"in.fp", "a", "0", "2", "out.fp", "b"}},
        {"file-writer", {"in.fp", "a", "prefix"}},
        {"file-reader", {"prefix", "out.fp", "b"}},
        {"fork", {"in.fp", "a", "o1.fp", "b1", "o2.fp", "b2"}},
        {"heatmap", {"in.fp", "a", "prefix"}},
        {"histogram", {"in.fp", "a", "8"}},
        {"magnitude", {"in.fp", "a", "out.fp", "b"}},
        {"moments", {"in.fp", "a"}},
        {"reduce", {"in.fp", "a", "0", "sum", "out.fp", "b"}},
        {"select", {"in.fp", "a", "1", "out.fp", "b", "x", "y"}},
        {"threshold", {"in.fp", "a", "above", "0.5", "out.fp", "b"}},
        {"transpose", {"in.fp", "a", "1,0", "out.fp", "b"}},
        {"validate", {"a.fp", "a", "b.fp", "b"}},
        {"aio", {"in.fp", "a", "0", "8", "out.txt", "x"}},
        {"lammps", {}},
        {"gromacs", {}},
        {"gtcp", {}},
    };
    for (const std::string& name : core::component_names()) {
        if (name == "test-opaque") continue;  // registered by this suite
        const auto it = rep.find(name);
        ASSERT_NE(it, rep.end())
            << "component '" << name << "' has no representative args in this "
            << "audit -- add it (and a contract() if it lacks one)";
        const auto c = core::make_component(name);
        const u::ArgList args(it->second);
        EXPECT_TRUE(c->ports(args).known) << name;
        EXPECT_TRUE(c->contract(args).known)
            << "component '" << name << "' is opaque to the analyzer";
    }
}
