// End-to-end workflow tests: the three workflows of the paper's evaluation
// (Figs. 5-7) assembled exactly as their launch scripts describe, validated
// against independently computed references; the AIO-vs-SmartBlock
// equivalence behind Table II; DAG workflows via Fork; and failure
// propagation across a running graph.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <thread>

#include "adios/reader.hpp"
#include "core/file_io.hpp"
#include "core/histogram.hpp"
#include "core/launch_script.hpp"
#include "core/workflow.hpp"
#include "sim/source_component.hpp"

namespace core = sb::core;
namespace sim = sb::sim;
namespace fp = sb::flexpath;
namespace a = sb::adios;
namespace u = sb::util;

namespace {

std::string tmp(const std::string& name) { return ::testing::TempDir() + "/" + name; }

/// Collects the per-step full arrays a simulation driver emits (reference
/// path: 1 rank, straight off the stream).
std::vector<std::vector<double>> sim_reference(const std::string& component,
                                               const std::vector<std::string>& args,
                                               const std::string& stream,
                                               const std::string& array) {
    sim::register_simulations();
    fp::Fabric fabric;
    std::vector<std::vector<double>> out;
    core::Workflow wf(fabric);
    wf.add(component, 1, args);
    std::jthread driver([&] { wf.run(); });
    a::Reader r(fabric, stream, 0, 1);
    while (r.begin_step()) {
        out.push_back(r.read<double>(array, u::Box::whole(r.inq_var(array).shape)));
        r.end_step();
    }
    return out;
}

core::HistogramResult reference_histogram(const std::vector<double>& values,
                                          std::size_t bins, std::uint64_t step) {
    double lo = values.at(0), hi = values.at(0);
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    core::HistogramResult h;
    h.step = step;
    h.min = lo;
    h.max = hi;
    h.counts = core::histogram_counts(values, lo, hi, bins);
    return h;
}

void expect_histograms_match(const std::vector<core::HistogramResult>& got,
                             const std::vector<core::HistogramResult>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t t = 0; t < want.size(); ++t) {
        EXPECT_EQ(got[t].step, want[t].step) << "step " << t;
        EXPECT_NEAR(got[t].min, want[t].min, 1e-12) << "step " << t;
        EXPECT_NEAR(got[t].max, want[t].max, 1e-12) << "step " << t;
        EXPECT_EQ(got[t].counts, want[t].counts) << "step " << t;
    }
}

}  // namespace

// ---- Fig. 5: the LAMMPS workflow -------------------------------------------

TEST(PaperWorkflows, LammpsVelocityHistogram) {
    sim::register_simulations();
    const std::string hist_file = tmp("wf_lammps_hist.txt");
    const std::string sim_args = "rows=10 cols=8 steps=3 substeps=4";

    // Reference: sim output -> select vx,vy,vz -> |v| -> histogram, computed
    // directly from the (deterministic) simulation data.
    const auto raw = sim_reference("lammps", u::ArgList::split(sim_args).raw(),
                                   "dump.custom.fp", "atoms");
    ASSERT_EQ(raw.size(), 3u);
    std::vector<core::HistogramResult> want;
    for (std::size_t t = 0; t < raw.size(); ++t) {
        std::vector<double> mags;
        for (std::size_t i = 0; i < raw[t].size(); i += 5) {
            const double vx = raw[t][i + 2], vy = raw[t][i + 3], vz = raw[t][i + 4];
            mags.push_back(std::sqrt(vx * vx + vy * vy + vz * vz));
        }
        want.push_back(reference_histogram(mags, 16, t));
    }

    // The workflow, assembled from the Fig. 8 launch script (scaled down).
    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 2 histogram velos.fp velocities 16 " + hist_file + " &\n"
        "aprun -n 3 magnitude lmpselect.fp lmpsel velos.fp velocities &\n"
        "aprun -n 3 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &\n"
        "aprun -n 4 lammps " + sim_args + " &\n"
        "wait\n");
    wf.run();
    EXPECT_GT(wf.elapsed_seconds(), 0.0);

    expect_histograms_match(core::read_histogram_file(hist_file), want);
}

// ---- Fig. 6: the GTCP workflow ----------------------------------------------

TEST(PaperWorkflows, GtcpPressureHistogram) {
    sim::register_simulations();
    const std::string hist_file = tmp("wf_gtcp_hist.txt");
    const std::string sim_args = "slices=4 gridpoints=18 steps=2";

    const auto raw =
        sim_reference("gtcp", u::ArgList::split(sim_args).raw(), "gtcp.fp", "field3d");
    ASSERT_EQ(raw.size(), 2u);
    std::vector<core::HistogramResult> want;
    for (std::size_t t = 0; t < raw.size(); ++t) {
        // perpendicular_pressure is quantity index 3 of 7.
        std::vector<double> pperp;
        for (std::size_t i = 3; i < raw[t].size(); i += 7) pperp.push_back(raw[t][i]);
        want.push_back(reference_histogram(pperp, 12, t));
    }

    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 4 gtcp " + sim_args + " &\n"
        "aprun -n 3 select gtcp.fp field3d 2 psel.fp pp perpendicular_pressure &\n"
        "aprun -n 2 dim-reduce psel.fp pp 2 1 pflat1.fp pp1 &\n"
        "aprun -n 2 dim-reduce pflat1.fp pp1 0 1 pflat2.fp pp2 &\n"
        "aprun -n 2 histogram pflat2.fp pp2 12 " + hist_file + " &\n"
        "wait\n");
    wf.run();

    expect_histograms_match(core::read_histogram_file(hist_file), want);
}

// ---- Fig. 7: the GROMACS workflow ---------------------------------------------

TEST(PaperWorkflows, GromacsSpreadHistogram) {
    sim::register_simulations();
    const std::string hist_file = tmp("wf_gmx_hist.txt");
    const std::string sim_args = "atoms=64 steps=3 substeps=3";

    const auto raw =
        sim_reference("gromacs", u::ArgList::split(sim_args).raw(), "gmx.fp", "coords");
    std::vector<core::HistogramResult> want;
    for (std::size_t t = 0; t < raw.size(); ++t) {
        std::vector<double> radii;
        for (std::size_t i = 0; i < raw[t].size(); i += 3) {
            radii.push_back(std::sqrt(raw[t][i] * raw[t][i] +
                                      raw[t][i + 1] * raw[t][i + 1] +
                                      raw[t][i + 2] * raw[t][i + 2]));
        }
        want.push_back(reference_histogram(radii, 10, t));
    }

    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 3 gromacs " + sim_args + " &\n"
        "aprun -n 2 magnitude gmx.fp coords radii.fp radii &\n"
        "aprun -n 1 histogram radii.fp radii 10 " + hist_file + " &\n"
        "wait\n");
    wf.run();

    // The spread of the atoms grows over the run (the paper's observable).
    const auto got = core::read_histogram_file(hist_file);
    expect_histograms_match(got, want);
    EXPECT_GT(got.back().max, got.front().max);
}

// ---- Table II: SmartBlock vs all-in-one equivalence ----------------------------

TEST(PaperWorkflows, AioProducesIdenticalHistograms) {
    sim::register_simulations();
    const std::string sb_file = tmp("wf_sb_hist.txt");
    const std::string aio_file = tmp("wf_aio_hist.txt");
    const std::string sim_args = "rows=8 cols=8 steps=2 substeps=3";

    {
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 lammps " + sim_args + " &\n"
            "aprun -n 2 select dump.custom.fp atoms 1 s.fp v vx vy vz &\n"
            "aprun -n 2 magnitude s.fp v m.fp mag &\n"
            "aprun -n 1 histogram m.fp mag 8 " + sb_file + " &\n");
        wf.run();
    }
    {
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 lammps " + sim_args + " &\n"
            "aprun -n 2 aio dump.custom.fp atoms 1 8 " + aio_file + " vx vy vz &\n");
        wf.run();
    }

    // The generic, componentized pipeline and the custom fused code must
    // produce the *same* analysis (that's the Table II premise).
    expect_histograms_match(core::read_histogram_file(sb_file),
                            core::read_histogram_file(aio_file));
}

// ---- DAG workflow via Fork ------------------------------------------------------

TEST(ExtendedWorkflows, ForkFansOutToTwoAnalyses) {
    sim::register_simulations();
    const std::string h1 = tmp("wf_fork_h1.txt");
    const std::string h2 = tmp("wf_fork_h2.txt");

    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        // gromacs -> fork -> (magnitude -> histogram) and (select x -> ... )
        "aprun -n 2 gromacs atoms=48 steps=2 substeps=2 &\n"
        "aprun -n 2 fork gmx.fp coords b1.fp c1 b2.fp c2 &\n"
        "aprun -n 2 magnitude b1.fp c1 m1.fp r1 &\n"
        "aprun -n 1 histogram m1.fp r1 6 " + h1 + " &\n"
        "aprun -n 2 select b2.fp c2 1 sx.fp x x &\n"
        "aprun -n 1 dim-reduce sx.fp x 1 0 fx.fp xflat &\n"
        "aprun -n 1 histogram fx.fp xflat 6 " + h2 + " &\n");
    wf.run();

    const auto r1 = core::read_histogram_file(h1);
    const auto r2 = core::read_histogram_file(h2);
    ASSERT_EQ(r1.size(), 2u);
    ASSERT_EQ(r2.size(), 2u);
    EXPECT_EQ(r1[0].total(), 48u);  // all atoms' |x|
    EXPECT_EQ(r2[0].total(), 48u);  // all atoms' x coordinate
}

// ---- offline stage via the file endpoints ----------------------------------------

TEST(ExtendedWorkflows, TwoPhaseWorkflowThroughDisk) {
    sim::register_simulations();
    const std::string prefix = tmp("wf_disk");
    const std::string hist_file = tmp("wf_disk_hist.txt");
    for (int s = 0; s < 4; ++s) std::filesystem::remove(core::step_file_path(prefix, s));

    {  // Phase 1: run the simulation now, park its output on disk.
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 gromacs atoms=32 steps=2 stream=gmx.fp &\n"
            "aprun -n 2 file-writer gmx.fp coords " + prefix + " &\n");
        wf.run();
    }
    {  // Phase 2: analyze later, no simulation running.
        fp::Fabric fabric;
        core::Workflow wf = core::build_workflow(
            fabric,
            "aprun -n 2 file-reader " + prefix + " replay.fp coords &\n"
            "aprun -n 2 magnitude replay.fp coords m.fp r &\n"
            "aprun -n 1 histogram m.fp r 5 " + hist_file + " &\n");
        wf.run();
    }
    const auto hists = core::read_histogram_file(hist_file);
    ASSERT_EQ(hists.size(), 2u);
    EXPECT_EQ(hists[0].total(), 32u);
}

// ---- data-increasing analytics ----------------------------------------------------

TEST(ExtendedWorkflows, AllPairsThenHistogram) {
    sim::register_simulations();
    const std::string hist_file = tmp("wf_ap_hist.txt");
    fp::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric,
        "aprun -n 1 gromacs atoms=12 steps=1 &\n"
        "aprun -n 1 magnitude gmx.fp coords m.fp r &\n"
        "aprun -n 2 all-pairs m.fp r ap.fp dists &\n"
        "aprun -n 1 dim-reduce ap.fp dists 1 0 flat.fp d1 &\n"
        "aprun -n 1 histogram flat.fp d1 4 " + hist_file + " &\n");
    wf.run();
    const auto hists = core::read_histogram_file(hist_file);
    ASSERT_EQ(hists.size(), 1u);
    EXPECT_EQ(hists[0].total(), 144u);  // n^2 pairwise distances
    EXPECT_GE(hists[0].counts[0], 12u);  // the diagonal zeros land in bin 0
}

// ---- failure handling ---------------------------------------------------------------

TEST(WorkflowErrors, FailingComponentUnwindsWholeGraph) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=16", "steps=50"});  // long-running producer
    // Histogram on a 2-D array: fails on its first step.
    wf.add("histogram", 1, {"gmx.fp", "coords", "4", tmp("wf_err.txt")});
    EXPECT_THROW(wf.run(), std::runtime_error);  // and does not hang
}

TEST(WorkflowErrors, UnknownComponentRejectedAtAdd) {
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    EXPECT_THROW(wf.add("not-a-component", 1, {}), std::runtime_error);
    EXPECT_THROW(wf.add("select", 0, {}), std::invalid_argument);
}

TEST(WorkflowErrors, RunTwiceRejected) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=4", "steps=1", "output=false"});
    wf.run();
    EXPECT_THROW(wf.run(), std::logic_error);
}

TEST(WorkflowErrors, EmptyWorkflowRejected) {
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    EXPECT_THROW(wf.run(), std::logic_error);
}

// ---- stats plumbing ------------------------------------------------------------------

TEST(WorkflowStats, PerComponentPerStepTimings) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 1, {"atoms=24", "steps=3"});
    auto mag_stats = wf.add("magnitude", 2, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "4", tmp("wf_stats_hist.txt")});
    wf.run();

    EXPECT_EQ(mag_stats->steps(), 3u);
    const auto rows = mag_stats->per_step();
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& r : rows) {
        EXPECT_EQ(r.nranks, 2);
        EXPECT_GE(r.max_seconds, r.mean_seconds);
        EXPECT_EQ(r.bytes_in, 24u * 3 * 8);  // whole array read per step
        EXPECT_EQ(r.bytes_out, 24u * 8);
    }
    EXPECT_EQ(mag_stats->total_bytes_in(), 3u * 24 * 3 * 8);
    EXPECT_EQ(mag_stats->total_bytes_out(), 3u * 24 * 8);
    EXPECT_GE(mag_stats->mean_step_seconds(), 0.0);
}

TEST(WorkflowStats, DescribeAndTotals) {
    sim::register_simulations();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 3, {"atoms=8", "steps=1", "output=false"});
    wf.add("lammps", 2, {"rows=4", "cols=4", "steps=1", "output=false"});
    EXPECT_EQ(wf.total_procs(), 5);
    EXPECT_EQ(wf.describe(0), "gromacs x3");
    EXPECT_EQ(wf.describe(1), "lammps x2");
    wf.run();
}
