// Deliberate-fault tests for the sb::check runtime analyzers: each test
// injects one failure class (lock inversion, mismatched collectives, a
// zero-copy view used after end_step, a stalled wait, API misuse) and
// asserts the analyzer produces the intended diagnostic — and that clean
// code produces none.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "adios/group.hpp"
#include "adios/writer.hpp"
#include "check/check.hpp"
#include "check/lifetime.hpp"
#include "check/mutex.hpp"
#include "check/waits.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/stream.hpp"
#include "flexpath/writer.hpp"
#include "mpi/runtime.hpp"
#include "util/ndarray.hpp"
#include "util/queue.hpp"

namespace chk = sb::check;
namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

/// Arms the analyzers for one test and restores the previous configuration
/// (enabled flag, stall timeout/action, diagnostics, graphs) afterwards, so
/// tests are order-independent and leave nothing armed for other suites.
class CheckTest : public ::testing::Test {
protected:
    void SetUp() override {
        was_enabled_ = chk::enabled();
        prev_timeout_ = chk::stall_timeout_seconds();
        prev_action_ = chk::stall_action();
        chk::set_enabled(true);
        chk::clear_diagnostics();
        chk::lock_order::reset();
        chk::reset_views();
    }

    void TearDown() override {
        chk::clear_diagnostics();
        chk::lock_order::reset();
        chk::reset_views();
        chk::set_stall_timeout_seconds(prev_timeout_);
        chk::set_stall_action(prev_action_);
        chk::set_enabled(was_enabled_);
    }

    /// True when some recorded diagnostic of `kind` contains `needle`.
    static bool diagnostic_contains(chk::Kind kind, const std::string& needle) {
        for (const chk::Diagnostic& d : chk::diagnostics()) {
            if (d.kind == kind && d.message.find(needle) != std::string::npos) {
                return true;
            }
        }
        return false;
    }

private:
    bool was_enabled_ = false;
    double prev_timeout_ = 5.0;
    chk::StallAction prev_action_ = chk::StallAction::Report;
};

// ---- lock-order analysis ---------------------------------------------------

TEST_F(CheckTest, AbbaLockInversionReportsCycle) {
    chk::CheckedMutex a("test.A");
    chk::CheckedMutex b("test.B");

    {
        const chk::ThreadLabel label("abba-thread");
        {  // A -> B
            std::lock_guard la(a);
            std::lock_guard lb(b);
        }
        {  // B -> A closes the cycle (a *potential* deadlock: this single
           // thread never actually deadlocks, the analyzer still flags it).
            std::lock_guard lb(b);
            std::lock_guard la(a);
        }
    }

    EXPECT_EQ(chk::lock_order::cycle_count(), 1u);
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::LockOrder), 1u);
    // The report names both mutexes and the acquiring context.
    EXPECT_TRUE(diagnostic_contains(chk::Kind::LockOrder, "test.A"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::LockOrder, "test.B"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::LockOrder, "abba-thread"));
}

TEST_F(CheckTest, ConsistentLockOrderIsSilent) {
    chk::CheckedMutex a("test.A");
    chk::CheckedMutex b("test.B");
    for (int i = 0; i < 3; ++i) {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    EXPECT_GE(chk::lock_order::edge_count(), 1u);
    EXPECT_EQ(chk::lock_order::cycle_count(), 0u);
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::LockOrder), 0u);
}

TEST_F(CheckTest, CycleReportedOncePerEdgePair) {
    chk::CheckedMutex a("test.A");
    chk::CheckedMutex b("test.B");
    for (int i = 0; i < 3; ++i) {
        {
            std::lock_guard la(a);
            std::lock_guard lb(b);
        }
        {
            std::lock_guard lb(b);
            std::lock_guard la(a);
        }
    }
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::LockOrder), 1u);
}

// ---- collective-matching verification --------------------------------------

TEST_F(CheckTest, DivergentCollectivesAbortWithRankTable) {
    EXPECT_THROW(
        sb::mpi::run_ranks(
            2,
            [](sb::mpi::Communicator& c) {
                if (c.rank() == 0) {
                    c.barrier();
                } else {
                    (void)c.allreduce<double>(1.0, sb::mpi::ReduceOp::Sum);
                }
            },
            "divergent"),
        chk::CollectiveMismatchError);

    EXPECT_GE(chk::diagnostic_count(chk::Kind::Collective), 1u);
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Collective, "barrier"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Collective, "allreduce"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Collective, "rank 0"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Collective, "rank 1"));
}

TEST_F(CheckTest, CountMismatchInVectorCollectiveIsCaught) {
    EXPECT_THROW(
        sb::mpi::run_ranks(
            2,
            [](sb::mpi::Communicator& c) {
                // Ranks disagree on the vector length — elementwise reduce
                // semantics are undefined; the verifier turns it into an
                // immediate error instead of corruption or a hang.
                std::vector<double> v(c.rank() == 0 ? 3 : 4, 1.0);
                (void)c.allreduce_vec<double>(v, sb::mpi::ReduceOp::Sum);
            },
            "lengths"),
        chk::CollectiveMismatchError);
    EXPECT_GE(chk::diagnostic_count(chk::Kind::Collective), 1u);
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Collective, "count=3"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Collective, "count=4"));
}

TEST_F(CheckTest, MatchingCollectivesAreSilent) {
    sb::mpi::run_ranks(
        3,
        [](sb::mpi::Communicator& c) {
            c.barrier();
            EXPECT_EQ(c.allreduce<int>(1, sb::mpi::ReduceOp::Sum), 3);
            std::vector<double> v(4, static_cast<double>(c.rank()));
            (void)c.allreduce_vec<double>(v, sb::mpi::ReduceOp::Max);
        },
        "matching");
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Collective), 0u);
}

// ---- view-lifetime guard ---------------------------------------------------

namespace {

void put_one_block(fp::WriterPort& port, const u::NdShape& shape) {
    port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
    std::vector<double> data(shape.volume(), 1.25);
    port.put<double>("a", u::Box::whole(shape), data);
    port.end_step();
}

}  // namespace

TEST_F(CheckTest, ViewReadAfterEndStepThrowsLifetimeError) {
    fp::Fabric fabric;
    const u::NdShape shape{4, 4};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "views", 0, 1, fp::StreamOptions{2});
        put_one_block(port, shape);
        port.close();
    });

    fp::ReaderPort reader(fabric, "views", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    const auto view = reader.try_read_view<double>("a", u::Box::whole(shape));
    ASSERT_TRUE(view.has_value());
    const auto bytes = std::as_bytes(*view);

    // While the step is live the span reads fine through the chokepoint.
    std::vector<std::byte> dst(bytes.size());
    const u::Box whole = u::Box::whole(shape);
    u::copy_box(bytes, whole, dst, whole, whole, sizeof(double));
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Lifetime), 0u);

    reader.end_step();  // the span dies here

    EXPECT_THROW(u::copy_box(bytes, whole, dst, whole, whole, sizeof(double)),
                 chk::LifetimeError);
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Lifetime), 1u);
    // The diagnostic attributes the stale span to its origin.
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Lifetime, "use-after-end_step"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Lifetime, "var 'a'"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Lifetime, "stream 'views'"));
}

TEST_F(CheckTest, ViewReadBeforeEndStepIsSilent) {
    fp::Fabric fabric;
    const u::NdShape shape{4, 4};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "views-ok", 0, 1, fp::StreamOptions{2});
        put_one_block(port, shape);
        port.close();
    });

    fp::ReaderPort reader(fabric, "views-ok", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    const auto view = reader.try_read_view<double>("a", u::Box::whole(shape));
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ((*view)[0], 1.25);
    EXPECT_GE(chk::live_view_count(), 1u);
    reader.end_step();
    EXPECT_FALSE(reader.begin_step());  // end of stream
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Lifetime), 0u);
}

// ---- API-misuse (usage) diagnostics ----------------------------------------

TEST_F(CheckTest, DoubleEndStepReportsUsage) {
    fp::Fabric fabric;
    const u::NdShape shape{2, 2};

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "misuse", 0, 1, fp::StreamOptions{2});
        put_one_block(port, shape);
        port.close();
    });

    fp::ReaderPort reader(fabric, "misuse", 0, 1);
    ASSERT_TRUE(reader.begin_step());
    reader.end_step();
    EXPECT_THROW(reader.end_step(), std::logic_error);
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Usage), 1u);
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Usage, "end_step without a step"));
}

TEST_F(CheckTest, WriteOutsideStepReportsUsage) {
    fp::Fabric fabric;
    sb::adios::GroupDef group;
    group.name = "g";
    group.vars.push_back(sb::adios::VarSpec{"x", sb::adios::DataKind::Float64,
                                            {"4"}});
    sb::adios::Writer writer(fabric, "misuse.w", group, 0, 1);

    const std::vector<double> data(4, 0.0);
    EXPECT_THROW(writer.write<double>("x", data, u::Box({0}, {4})),
                 std::logic_error);
    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Usage), 1u);
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Usage, "outside begin_step"));
}

// ---- wait-for graph & stall detection --------------------------------------

TEST_F(CheckTest, ReaderOnNeverWrittenStreamStalls) {
    chk::set_stall_timeout_seconds(0.05);
    chk::set_stall_action(chk::StallAction::Throw);

    fp::Fabric fabric;
    fp::ReaderPort reader(fabric, "nobody-writes-this", 0, 1);
    EXPECT_THROW(reader.begin_step(), chk::StallError);

    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Stall), 1u);
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Stall, "wait-for table"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Stall, "nobody-writes-this"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Stall, "no writer attached"));
    fabric.abort_all();  // release the stream for teardown
}

TEST_F(CheckTest, StallReportKeepsWaitingAndRecovers) {
    chk::set_stall_timeout_seconds(0.05);
    chk::set_stall_action(chk::StallAction::Report);

    u::BoundedQueue<int> q(1, "stall-test");
    std::jthread consumer([&] {
        const chk::ThreadLabel label("stalled-consumer");
        // Blocks well past the stall timeout: the detector dumps the
        // wait-for table but (Report action) the wait then continues and
        // completes normally once the producer shows up.
        EXPECT_EQ(q.pop().value(), 7);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    q.push(7);
    consumer.join();

    EXPECT_EQ(chk::diagnostic_count(chk::Kind::Stall), 1u);
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Stall, "queue 'stall-test'"));
    EXPECT_TRUE(diagnostic_contains(chk::Kind::Stall, "stalled-consumer"));
    EXPECT_EQ(chk::active_wait_count(), 0u);
}

// ---- disabled mode ---------------------------------------------------------

TEST_F(CheckTest, DisabledModeRecordsNothing) {
    chk::set_enabled(false);

    chk::CheckedMutex a("off.A");
    chk::CheckedMutex b("off.B");
    {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    {
        std::lock_guard lb(b);
        std::lock_guard la(a);
    }
    EXPECT_EQ(chk::lock_order::edge_count(), 0u);
    EXPECT_EQ(chk::lock_order::cycle_count(), 0u);

    const std::vector<std::byte> buf(64);
    chk::note_read(buf.data(), buf.size());  // no registry, no throw

    sb::mpi::run_ranks(2, [](sb::mpi::Communicator& c) {
        c.barrier();
        EXPECT_EQ(c.allreduce<int>(1, sb::mpi::ReduceOp::Sum), 2);
    });

    EXPECT_TRUE(chk::diagnostics().empty());
}

// The instrumented runtime stays diagnostic-free on a clean MxN pipeline —
// the analyzers flag real faults, not normal operation.
TEST_F(CheckTest, CleanPipelineProducesNoDiagnostics) {
    fp::Fabric fabric;
    const u::NdShape shape{8, 6};

    std::jthread writers([&] {
        sb::mpi::run_ranks(2, [&](sb::mpi::Communicator& c) {
            fp::WriterPort port(fabric, "clean", c.rank(), c.size(),
                                fp::StreamOptions{1});
            for (int t = 0; t < 4; ++t) {
                port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
                const u::Box box = u::partition_along(shape, 0, c.rank(), c.size());
                std::vector<double> data(box.volume(), static_cast<double>(t));
                port.put<double>("a", box, data);
                port.end_step();
            }
            port.close();
        });
    });

    sb::mpi::run_ranks(3, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "clean", c.rank(), c.size());
        while (port.begin_step()) {
            const u::Box box = u::partition_along(shape, 1, c.rank(), c.size());
            const auto data = port.read<double>("a", box);
            EXPECT_EQ(data.size(), box.volume());
            port.end_step();
        }
    });
    writers.join();

    EXPECT_TRUE(chk::diagnostics().empty())
        << chk::diagnostics().front().message;
}

}  // namespace
