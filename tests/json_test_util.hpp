// Minimal recursive-descent JSON parser shared by the observability tests:
// the exporters (Workflow::write_trace / write_metrics, timeseries_to_json,
// critical_path_to_json) must produce well-formed documents, not just
// grep-able text, and the tests validate that by actually parsing them.
#pragma once

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace jsonutil {

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue* find(const std::string& key) const {
        const auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : s_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing content");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) {
        throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) +
                                 ": " + why);
    }
    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                    s_[pos_] == '\n' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }
    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    bool consume(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool consume_word(std::string_view w) {
        if (s_.substr(pos_, w.size()) == w) {
            pos_ += w.size();
            return true;
        }
        return false;
    }

    JsonValue value() {
        skip_ws();
        JsonValue v;
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"':
                v.kind = JsonValue::Kind::String;
                v.str = string();
                return v;
            case 't':
                if (!consume_word("true")) fail("bad literal");
                v.kind = JsonValue::Kind::Bool;
                v.boolean = true;
                return v;
            case 'f':
                if (!consume_word("false")) fail("bad literal");
                v.kind = JsonValue::Kind::Bool;
                return v;
            case 'n':
                if (!consume_word("null")) fail("bad literal");
                return v;
            default: return number();
        }
    }

    JsonValue object() {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skip_ws();
        if (consume('}')) return v;
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v.obj.emplace(std::move(key), value());
            skip_ws();
            if (consume('}')) return v;
            expect(',');
        }
    }

    JsonValue array() {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skip_ws();
        if (consume(']')) return v;
        while (true) {
            v.arr.push_back(value());
            skip_ws();
            if (consume(']')) return v;
            expect(',');
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // The exporters only emit \u00xx; that's all we decode.
                    out.push_back(static_cast<char>(code & 0xff));
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(std::string(s_.substr(start, pos_ - start)));
        return v;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

inline JsonValue parse_json_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return JsonParser(ss.str()).parse();
}

}  // namespace jsonutil
