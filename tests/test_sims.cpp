// Tests for the simulation drivers: deck configuration, physical sanity,
// and — critically — rank-count independence: the data a workflow sees must
// not depend on how many processes the simulation used.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <thread>

#include "adios/reader.hpp"
#include "core/registry.hpp"
#include "mpi/runtime.hpp"
#include "sim/crack_sim.hpp"
#include "sim/md_sim.hpp"
#include "sim/source_component.hpp"
#include "sim/toroid_sim.hpp"

namespace sim = sb::sim;
namespace core = sb::core;
namespace fp = sb::flexpath;
namespace a = sb::adios;
namespace u = sb::util;

namespace {

/// Runs a registered simulation driver with `nprocs` ranks and collects all
/// steps of its output stream.
std::vector<std::vector<double>> run_and_collect(const std::string& component,
                                                 const std::vector<std::string>& args,
                                                 int nprocs, const std::string& stream,
                                                 const std::string& array,
                                                 std::map<std::string, std::vector<std::string>>* attrs = nullptr,
                                                 std::vector<std::string>* labels = nullptr) {
    sim::register_simulations();
    fp::Fabric fabric;
    std::jthread driver([&] {
        sb::mpi::run_ranks(nprocs, [&](sb::mpi::Communicator& comm) {
            auto c = core::make_component(component);
            core::RunContext ctx{fabric, comm, nullptr, {}};
            c->run(ctx, u::ArgList(args));
        });
    });
    std::vector<std::vector<double>> out;
    a::Reader r(fabric, stream, 0, 1);
    while (r.begin_step()) {
        const a::VarInfo info = r.inq_var(array);
        if (attrs) *attrs = r.string_attributes();
        if (labels) *labels = info.dim_labels;
        out.push_back(r.read<double>(array, u::Box::whole(info.shape)));
        r.end_step();
    }
    return out;
}

}  // namespace

// ---- Deck -------------------------------------------------------------------

TEST(Deck, InlineKeyValues) {
    const sim::Deck d = sim::Deck::from_args(u::ArgList({"rows=8", "pull=0.5",
                                                         "output=false", "name=x"}));
    EXPECT_EQ(d.get_u64("rows", 0), 8u);
    EXPECT_DOUBLE_EQ(d.get_double("pull", 0), 0.5);
    EXPECT_FALSE(d.get_bool("output", true));
    EXPECT_EQ(d.get("name", ""), "x");
    EXPECT_EQ(d.get_u64("missing", 42), 42u);
    EXPECT_TRUE(d.has("rows"));
    EXPECT_FALSE(d.has("cols"));
}

TEST(Deck, FromFileWithCommentsAndSpaces) {
    const std::string path = ::testing::TempDir() + "/sb_deck.in";
    std::ofstream(path) << "# crack input deck\n"
                        << "rows = 16\n"
                        << "cols=24   # inline comment\n"
                        << "\n"
                        << "stream = dump.fp\n";
    const sim::Deck d = sim::Deck::from_file(path);
    EXPECT_EQ(d.get_u64("rows", 0), 16u);
    EXPECT_EQ(d.get_u64("cols", 0), 24u);
    EXPECT_EQ(d.get("stream", ""), "dump.fp");
    EXPECT_THROW((void)sim::Deck::from_file("/no/such/deck"), u::ArgError);
}

TEST(Deck, LaterSettingsWin) {
    const std::string path = ::testing::TempDir() + "/sb_deck2.in";
    std::ofstream(path) << "rows = 16\n";
    const sim::Deck d = sim::Deck::from_args(u::ArgList({path, "rows=99"}));
    EXPECT_EQ(d.get_u64("rows", 0), 99u);
}

TEST(Deck, BadValuesThrow) {
    const sim::Deck d = sim::Deck::from_args(u::ArgList({"n=abc", "b=maybe"}));
    EXPECT_THROW((void)d.get_u64("n", 0), u::ArgError);
    EXPECT_THROW((void)d.get_double("n", 0), u::ArgError);
    EXPECT_THROW((void)d.get_bool("b", false), u::ArgError);
}

TEST(HashNoise, DeterministicAndBounded) {
    EXPECT_EQ(sim::hash_noise(1, 2, 3), sim::hash_noise(1, 2, 3));
    EXPECT_NE(sim::hash_noise(1, 2, 3), sim::hash_noise(1, 2, 4));
    double mean = 0.0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const double v = sim::hash_noise(i, i * 7, 13);
        EXPECT_GE(v, -1.0);
        EXPECT_LT(v, 1.0);
        mean += v;
    }
    EXPECT_LT(std::abs(mean / 1000.0), 0.1);  // roughly centred
}

// ---- CrackSim ------------------------------------------------------------------

TEST(CrackSim, CrackPropagatesFromNotchTip) {
    sim::CrackSimParams p;
    p.rows = 24;
    p.cols = 24;
    sim::CrackSim s(p, 0, p.rows);
    EXPECT_EQ(s.broken_bonds(), 0u);
    EXPECT_EQ(s.crack_extent(), 0u);
    std::uint64_t extent_mid = 0;
    for (int i = 0; i < 600; ++i) {
        s.substep({}, {});
        if (i == 299) extent_mid = s.crack_extent();
    }
    // The strain must tear bonds beyond the pre-cut notch, along the notch
    // row (a propagating crack, not boundary shear), progressively.
    EXPECT_GT(extent_mid, 0u);
    EXPECT_GE(s.crack_extent(), extent_mid);
    EXPECT_GE(s.broken_bonds(), s.crack_extent());
    EXPECT_GT(s.kinetic_energy(), 0.0);
    for (double v : s.dump()) EXPECT_TRUE(std::isfinite(v));
}

TEST(CrackSim, DumpSchema) {
    sim::CrackSimParams p;
    p.rows = 4;
    p.cols = 3;
    sim::CrackSim s(p, 0, 4);
    const auto d = s.dump();
    ASSERT_EQ(d.size(), 4u * 3u * 5u);
    EXPECT_EQ(d[0], 1.0);        // ID of the first particle
    EXPECT_EQ(d[1], 2.0);        // Type: top row is boundary
    EXPECT_EQ(d[3 * 5 * 1 + 1], 1.0);  // second row: interior
    EXPECT_EQ(d[3 * 5 * 3 + 1], 2.0);  // bottom row: boundary
    EXPECT_EQ(d[5], 2.0);        // second particle's ID
}

TEST(CrackSim, ParamsFromDeckValidates) {
    sim::Deck d;
    d.set("rows", "1");
    EXPECT_THROW((void)sim::CrackSimParams::from_deck(d), u::ArgError);
    sim::Deck ok;
    ok.set("rows", "8");
    ok.set("cols", "6");
    ok.set("steps", "2");
    const auto p = sim::CrackSimParams::from_deck(ok);
    EXPECT_EQ(p.particles(), 48u);
    EXPECT_EQ(p.bytes_per_step(), 48u * 5 * 8);
    EXPECT_EQ(p.notch, 6u / 4);
}

class CrackSimRanks : public ::testing::TestWithParam<int> {};

TEST_P(CrackSimRanks, OutputIndependentOfRankCount) {
    const std::vector<std::string> args = {"rows=12", "cols=10", "steps=3",
                                           "substeps=4", "stream=lmp.fp"};
    const auto ref = run_and_collect("lammps", args, 1, "lmp.fp", "atoms");
    const auto got = run_and_collect("lammps", args, GetParam(), "lmp.fp", "atoms");
    ASSERT_EQ(ref.size(), 3u);
    ASSERT_EQ(got.size(), 3u);
    for (std::size_t t = 0; t < ref.size(); ++t) {
        ASSERT_EQ(got[t].size(), ref[t].size());
        for (std::size_t i = 0; i < ref[t].size(); ++i) {
            ASSERT_DOUBLE_EQ(got[t][i], ref[t][i]) << "step " << t << " elem " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CrackSimRanks, ::testing::Values(2, 3, 5));

TEST(CrackSimComponent, HeaderAndLabels) {
    std::map<std::string, std::vector<std::string>> attrs;
    std::vector<std::string> labels;
    const auto steps = run_and_collect("lammps", {"rows=6", "cols=4", "steps=1"}, 2,
                                       "dump.custom.fp", "atoms", &attrs, &labels);
    ASSERT_EQ(steps.size(), 1u);
    EXPECT_EQ(steps[0].size(), 6u * 4 * 5);
    EXPECT_EQ(attrs.at("atoms.header.1"),
              (std::vector<std::string>{"ID", "Type", "vx", "vy", "vz"}));
    EXPECT_EQ(labels, (std::vector<std::string>{"natoms", "nquantities"}));
}

// ---- ToroidSim -------------------------------------------------------------------

TEST(ToroidField, DeterministicAndFinite) {
    sim::ToroidSimParams p;
    p.slices = 4;
    p.gridpoints = 16;
    const sim::ToroidField f(p);
    std::vector<double> a(16 * 7), b(16 * 7);
    f.evaluate(2, 0, 16, 5, a);
    f.evaluate(2, 0, 16, 5, b);
    EXPECT_EQ(a, b);
    for (double v : a) EXPECT_TRUE(std::isfinite(v));
    // Density and temperature stay physically positive.
    for (std::size_t g = 0; g < 16; ++g) {
        EXPECT_GT(a[g * 7 + 0], 0.0);
        EXPECT_GT(a[g * 7 + 1], 0.0);
    }
}

TEST(ToroidField, RangeEvaluationMatchesPointwise) {
    sim::ToroidSimParams p;
    p.slices = 3;
    p.gridpoints = 20;
    const sim::ToroidField f(p);
    std::vector<double> whole(20 * 7), part(5 * 7);
    f.evaluate(1, 0, 20, 2, whole);
    f.evaluate(1, 10, 5, 2, part);
    for (std::size_t i = 0; i < part.size(); ++i) {
        EXPECT_EQ(part[i], whole[10 * 7 + i]);
    }
}

TEST(ToroidField, EvolvesOverTime) {
    sim::ToroidSimParams p;
    const sim::ToroidField f(p);
    std::vector<double> t0(p.gridpoints * 7), t1(p.gridpoints * 7);
    f.evaluate(0, 0, p.gridpoints, 0, t0);
    f.evaluate(0, 0, p.gridpoints, 7, t1);
    EXPECT_NE(t0, t1);
}

class ToroidSimRanks : public ::testing::TestWithParam<int> {};

TEST_P(ToroidSimRanks, OutputIndependentOfRankCount) {
    const std::vector<std::string> args = {"slices=3", "gridpoints=14", "steps=2",
                                           "stream=g.fp"};
    const auto ref = run_and_collect("gtcp", args, 1, "g.fp", "field3d");
    const auto got = run_and_collect("gtcp", args, GetParam(), "g.fp", "field3d");
    ASSERT_EQ(ref.size(), 2u);
    ASSERT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ToroidSimRanks, ::testing::Values(2, 4, 7));

TEST(ToroidSimComponent, SchemaMatchesPaper) {
    std::map<std::string, std::vector<std::string>> attrs;
    std::vector<std::string> labels;
    const auto steps = run_and_collect("gtcp", {"slices=2", "gridpoints=6", "steps=1"},
                                       2, "gtcp.fp", "field3d", &attrs, &labels);
    ASSERT_EQ(steps.size(), 1u);
    EXPECT_EQ(steps[0].size(), 2u * 6 * 7);
    EXPECT_EQ(attrs.at("field3d.header.2"), sim::kToroidQuantities);
    EXPECT_EQ(labels, (std::vector<std::string>{"ntoroidal", "ngridpoints",
                                                "nquantities"}));
}

// ---- MdSim -----------------------------------------------------------------------

TEST(MdSim, AtomsSpreadOverTime) {
    sim::MdSimParams p;
    p.atoms = 200;
    sim::MdSim s(p, 0, p.atoms);
    const double r0 = s.mean_radius();
    for (std::uint64_t t = 0; t < 100; ++t) s.substep(t);
    EXPECT_GT(s.mean_radius(), r0 * 1.5);  // outward drift dominates
    for (double v : s.coords()) EXPECT_TRUE(std::isfinite(v));
}

class MdSimRanks : public ::testing::TestWithParam<int> {};

TEST_P(MdSimRanks, OutputIndependentOfRankCount) {
    const std::vector<std::string> args = {"atoms=37", "steps=2", "substeps=3",
                                           "stream=md.fp"};
    const auto ref = run_and_collect("gromacs", args, 1, "md.fp", "coords");
    const auto got = run_and_collect("gromacs", args, GetParam(), "md.fp", "coords");
    ASSERT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(Ranks, MdSimRanks, ::testing::Values(2, 5, 8));

TEST(MdSimComponent, SchemaMatchesPaper) {
    std::map<std::string, std::vector<std::string>> attrs;
    const auto steps = run_and_collect("gromacs", {"atoms=10", "steps=2"}, 1, "gmx.fp",
                                       "coords", &attrs);
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0].size(), 30u);
    EXPECT_EQ(attrs.at("coords.header.1"), (std::vector<std::string>{"x", "y", "z"}));
}
