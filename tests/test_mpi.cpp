// Tests for the in-process message-passing runtime: point-to-point
// semantics, collectives across a sweep of group sizes, and failure
// propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpi/runtime.hpp"

namespace m = sb::mpi;

TEST(Mpi, RankAndSize) {
    std::atomic<int> sum{0};
    m::run_ranks(5, [&](m::Communicator& c) {
        EXPECT_EQ(c.size(), 5);
        EXPECT_GE(c.rank(), 0);
        EXPECT_LT(c.rank(), 5);
        sum += c.rank();
    });
    EXPECT_EQ(sum.load(), 10);
}

TEST(Mpi, SendRecvValue) {
    m::run_ranks(2, [](m::Communicator& c) {
        if (c.rank() == 0) {
            c.send_value<int>(1, 0, 42);
        } else {
            EXPECT_EQ(c.recv_value<int>(0, 0), 42);
        }
    });
}

TEST(Mpi, SendRecvVector) {
    m::run_ranks(2, [](m::Communicator& c) {
        if (c.rank() == 0) {
            std::vector<double> v = {1.5, 2.5, 3.5};
            c.send<double>(1, 9, v);
        } else {
            EXPECT_EQ(c.recv<double>(0, 9),
                      (std::vector<double>{1.5, 2.5, 3.5}));
        }
    });
}

TEST(Mpi, MessagesMatchedByTag) {
    m::run_ranks(2, [](m::Communicator& c) {
        if (c.rank() == 0) {
            c.send_value<int>(1, /*tag=*/1, 100);
            c.send_value<int>(1, /*tag=*/2, 200);
        } else {
            // Receive in the opposite order of sending: tags disambiguate.
            EXPECT_EQ(c.recv_value<int>(0, 2), 200);
            EXPECT_EQ(c.recv_value<int>(0, 1), 100);
        }
    });
}

TEST(Mpi, FifoPerSourceAndTag) {
    m::run_ranks(2, [](m::Communicator& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 20; ++i) c.send_value<int>(1, 0, i);
        } else {
            for (int i = 0; i < 20; ++i) EXPECT_EQ(c.recv_value<int>(0, 0), i);
        }
    });
}

TEST(Mpi, SendToBadRankThrows) {
    m::run_ranks(1, [](m::Communicator& c) {
        EXPECT_THROW(c.send_value<int>(1, 0, 1), std::out_of_range);
        EXPECT_THROW(c.send_value<int>(-1, 0, 1), std::out_of_range);
        EXPECT_THROW((void)c.recv_value<int>(3, 0), std::out_of_range);
    });
}

TEST(Mpi, RingExchange) {
    m::run_ranks(4, [](m::Communicator& c) {
        const int next = (c.rank() + 1) % c.size();
        const int prev = (c.rank() + c.size() - 1) % c.size();
        c.send_value<int>(next, 5, c.rank());
        EXPECT_EQ(c.recv_value<int>(prev, 5), prev);
    });
}

// ---- collectives over a sweep of group sizes ------------------------------

class MpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MpiCollectives, Barrier) {
    const int n = GetParam();
    std::atomic<int> before{0}, after{0};
    m::run_ranks(n, [&](m::Communicator& c) {
        ++before;
        c.barrier();
        // After any rank crosses the barrier, every rank must have arrived.
        EXPECT_EQ(before.load(), n);
        ++after;
    });
    EXPECT_EQ(after.load(), n);
}

TEST_P(MpiCollectives, AllgatherScalar) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        const auto all = c.allgather<int>(c.rank() * 10);
        ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    });
}

TEST_P(MpiCollectives, AllgathervVariableLengths) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        std::vector<std::int64_t> mine(static_cast<std::size_t>(c.rank()), c.rank());
        const auto all = c.allgatherv<std::int64_t>(mine);
        ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                      static_cast<std::size_t>(r));
            for (auto v : all[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
        }
    });
}

TEST_P(MpiCollectives, Bcast) {
    const int n = GetParam();
    for (int root = 0; root < n; root += std::max(1, n / 2)) {
        m::run_ranks(n, [&](m::Communicator& c) {
            const double v = c.rank() == root ? 3.25 : -1.0;
            EXPECT_DOUBLE_EQ(c.bcast<double>(root, v), 3.25);
        });
    }
}

TEST_P(MpiCollectives, AllreduceOps) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        const int r = c.rank() + 1;  // 1..n
        EXPECT_EQ(c.allreduce<int>(r, m::ReduceOp::Sum), n * (n + 1) / 2);
        EXPECT_EQ(c.allreduce<int>(r, m::ReduceOp::Min), 1);
        EXPECT_EQ(c.allreduce<int>(r, m::ReduceOp::Max), n);
        if (n <= 8) {
            std::int64_t fact = 1;
            for (int i = 2; i <= n; ++i) fact *= i;
            EXPECT_EQ(c.allreduce<std::int64_t>(r, m::ReduceOp::Prod), fact);
        }
    });
}

TEST_P(MpiCollectives, AllreduceVecElementwise) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        const std::vector<std::uint64_t> mine = {1, static_cast<std::uint64_t>(c.rank()),
                                                 7};
        const auto out = c.allreduce_vec<std::uint64_t>(mine, m::ReduceOp::Sum);
        ASSERT_EQ(out.size(), 3u);
        EXPECT_EQ(out[0], static_cast<std::uint64_t>(n));
        EXPECT_EQ(out[1], static_cast<std::uint64_t>(n * (n - 1) / 2));
        EXPECT_EQ(out[2], static_cast<std::uint64_t>(7 * n));
    });
}

TEST_P(MpiCollectives, GatherOnlyRootKeeps) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        const auto all = c.gather<int>(c.rank(), 0);
        if (c.rank() == 0) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST_P(MpiCollectives, RepeatedCollectivesStayConsistent) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        for (int round = 0; round < 25; ++round) {
            const int v = c.allreduce<int>(c.rank() + round, m::ReduceOp::Sum);
            EXPECT_EQ(v, n * (n - 1) / 2 + n * round);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpiCollectives, ::testing::Values(1, 2, 3, 5, 8, 13));

// ---- failure propagation ---------------------------------------------------

TEST(Mpi, ThrowingRankAbortsBlockedPeers) {
    EXPECT_THROW(
        m::run_ranks(3,
                     [](m::Communicator& c) {
                         if (c.rank() == 0) {
                             throw std::runtime_error("rank 0 died");
                         }
                         // Peers block forever unless the abort wakes them.
                         (void)c.recv_value<int>(0, 0);
                     }),
        std::runtime_error);
}

TEST(Mpi, RootCauseIsRethrownNotAbortError) {
    try {
        m::run_ranks(4, [](m::Communicator& c) {
            if (c.rank() == 2) throw std::logic_error("root cause");
            c.barrier();
            c.barrier();
        });
        FAIL() << "expected a throw";
    } catch (const std::logic_error& e) {
        EXPECT_STREQ(e.what(), "root cause");
    }
}

TEST(Mpi, AbortWakesCollectiveWaiters) {
    EXPECT_THROW(m::run_ranks(3,
                              [](m::Communicator& c) {
                                  if (c.rank() == 1) {
                                      throw std::runtime_error("boom");
                                  }
                                  c.barrier();  // would deadlock without abort
                              }),
                 std::runtime_error);
}

TEST(Mpi, GroupCommAccessors) {
    m::Group g(3);
    EXPECT_EQ(g.size(), 3);
    EXPECT_EQ(g.comm(2).rank(), 2);
    EXPECT_THROW((void)g.comm(3), std::out_of_range);
    EXPECT_THROW(m::Group(0), std::invalid_argument);
}

class MpiScan : public ::testing::TestWithParam<int> {};

TEST_P(MpiScan, InclusiveAndExclusivePrefixes) {
    const int n = GetParam();
    m::run_ranks(n, [&](m::Communicator& c) {
        const int r = c.rank() + 1;
        // Inclusive: sum of 1..rank+1.
        EXPECT_EQ(c.scan<int>(r, m::ReduceOp::Sum), (c.rank() + 1) * (c.rank() + 2) / 2);
        // Exclusive: sum of 1..rank (0 on rank 0).
        EXPECT_EQ(c.exscan<int>(r, m::ReduceOp::Sum), c.rank() * (c.rank() + 1) / 2);
        // Min/max prefixes with identities.
        EXPECT_EQ(c.scan<int>(r, m::ReduceOp::Min), 1);
        EXPECT_EQ(c.scan<int>(r, m::ReduceOp::Max), r);
        if (c.rank() == 0) {
            EXPECT_EQ(c.exscan<int>(r, m::ReduceOp::Min), std::numeric_limits<int>::max());
            EXPECT_EQ(c.exscan<int>(r, m::ReduceOp::Max), std::numeric_limits<int>::lowest());
        } else {
            EXPECT_EQ(c.exscan<int>(r, m::ReduceOp::Min), 1);
            EXPECT_EQ(c.exscan<int>(r, m::ReduceOp::Max), c.rank());
        }
        // Prefix products.
        std::int64_t fact = 1;
        for (int i = 2; i <= r; ++i) fact *= i;
        EXPECT_EQ(c.scan<std::int64_t>(r, m::ReduceOp::Prod), fact);
    });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpiScan, ::testing::Values(1, 2, 5, 9));
