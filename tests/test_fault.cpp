// Tests for sb::fault (deterministic fault injection) and for workflow
// supervision: component restart with stream replay, source replay
// suppression, restart exhaustion, and secondary-error collection — the
// chaos suite behind docs/RESILIENCE.md.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/component.hpp"
#include "core/registry.hpp"
#include "core/workflow.hpp"
#include "fault/fault.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/stream.hpp"
#include "flexpath/writer.hpp"
#include "obs/metrics.hpp"
#include "util/pool.hpp"

namespace core = sb::core;
namespace fp = sb::flexpath;
namespace u = sb::util;
namespace ft = sb::fault;

namespace {

double counter_total(const std::string& name) {
    return sb::obs::Registry::global().total(name);
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string tmp(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

/// Every test disarms on exit so an injected schedule never leaks into the
/// next case (the registry is process-wide).
class FaultTest : public ::testing::Test {
protected:
    void TearDown() override { ft::Registry::global().disarm_all(); }
};

// ---- chaos components ------------------------------------------------------

/// Deterministic source: `steps` steps of a 1-D "v" array, f(t, i) stamped.
/// Regenerates the identical sequence on every (re)start — the property the
/// stream-side replay suppression relies on.
class ChaosSource final : public core::Component {
public:
    std::string name() const override { return "chaos_source"; }
    std::string usage() const override {
        return "chaos_source out-stream-name num-steps [len]";
    }
    core::Ports ports(const u::ArgList& args) const override {
        args.require_at_least(2, usage());
        return core::Ports{{}, {args.str(0, "out-stream-name")}};
    }
    void run(core::RunContext& ctx, const u::ArgList& args) override {
        args.require_at_least(2, usage());
        const std::string out = args.str(0, "out-stream-name");
        const std::uint64_t steps = args.unsigned_integer(1, "num-steps");
        const std::uint64_t len =
            args.size() > 2 ? args.unsigned_integer(2, "len") : 16;
        fp::WriterPort port(ctx.fabric, out, ctx.comm.rank(), ctx.comm.size(),
                            ctx.stream_options);
        for (std::uint64_t t = 0; t < steps; ++t) {
            port.declare(
                fp::VarDecl{"v", fp::DataKind::Float64, u::NdShape{len}, {}});
            std::vector<double> v(len);
            for (std::uint64_t i = 0; i < len; ++i) {
                v[i] = static_cast<double>(t * 100 + i) * 0.25;
            }
            port.put<double>("v", u::Box({0}, {len}), v);
            port.end_step();
            // The "component.step" fault point fires here (record_step),
            // after the step was submitted — modelling a rank that dies
            // between publishing and bookkeeping.
            core::record_step(ctx, t, 0.0, 0, len * sizeof(double));
        }
        port.close();
    }
};

/// Middle component: reads 1-D "v", writes 2*v.  Publishes its output step
/// *before* acknowledging the input step, so a crash between the two leaves
/// exactly the state the supervisor's skip_reader_to alignment handles.
class ChaosDouble final : public core::Component {
public:
    std::string name() const override { return "chaos_double"; }
    std::string usage() const override {
        return "chaos_double in-stream-name out-stream-name";
    }
    core::Ports ports(const u::ArgList& args) const override {
        args.require_at_least(2, usage());
        return core::Ports{{args.str(0, "in-stream-name")},
                           {args.str(1, "out-stream-name")}};
    }
    void run(core::RunContext& ctx, const u::ArgList& args) override {
        args.require_at_least(2, usage());
        fp::ReaderPort in(ctx.fabric, args.str(0, "in-stream-name"),
                          ctx.comm.rank(), ctx.comm.size());
        fp::WriterPort out(ctx.fabric, args.str(1, "out-stream-name"),
                           ctx.comm.rank(), ctx.comm.size(), ctx.stream_options);
        while (in.begin_step()) {
            const fp::VarDecl& decl = in.var("v");
            auto v = in.read<double>("v", u::Box::whole(decl.global_shape));
            for (double& x : v) x *= 2.0;
            out.declare(
                fp::VarDecl{"v", fp::DataKind::Float64, decl.global_shape, {}});
            out.put<double>("v", u::Box::whole(decl.global_shape), v);
            out.end_step();
            core::record_step(ctx, in.current_step(), 0.0,
                              v.size() * sizeof(double),
                              v.size() * sizeof(double));
            in.end_step();
        }
        out.close();
    }
};

/// Fails immediately with a distinct, typed error (no streams touched).
class Failer final : public core::Component {
public:
    std::string name() const override { return "chaos_failer"; }
    std::string usage() const override { return "chaos_failer message"; }
    core::Ports ports(const u::ArgList&) const override {
        return core::Ports{{}, {}};
    }
    void run(core::RunContext&, const u::ArgList& args) override {
        throw std::domain_error(args.str(0, "message"));
    }
};

/// ChaosSource's zero-copy twin: fills the transport's pooled step buffer
/// in place (put_view) instead of staging + put.  Same deterministic values.
class ChaosViewSource final : public core::Component {
public:
    std::string name() const override { return "chaos_view_source"; }
    std::string usage() const override {
        return "chaos_view_source out-stream-name num-steps [len]";
    }
    core::Ports ports(const u::ArgList& args) const override {
        args.require_at_least(2, usage());
        return core::Ports{{}, {args.str(0, "out-stream-name")}};
    }
    void run(core::RunContext& ctx, const u::ArgList& args) override {
        args.require_at_least(2, usage());
        const std::string out = args.str(0, "out-stream-name");
        const std::uint64_t steps = args.unsigned_integer(1, "num-steps");
        const std::uint64_t len =
            args.size() > 2 ? args.unsigned_integer(2, "len") : 16;
        fp::WriterPort port(ctx.fabric, out, ctx.comm.rank(), ctx.comm.size(),
                            ctx.stream_options);
        for (std::uint64_t t = 0; t < steps; ++t) {
            port.declare(
                fp::VarDecl{"v", fp::DataKind::Float64, u::NdShape{len}, {}});
            const std::span<std::byte> raw =
                port.put_view("v", u::Box({0}, {len}));
            auto* v = reinterpret_cast<double*>(raw.data());
            for (std::uint64_t i = 0; i < len; ++i) {
                v[i] = static_cast<double>(t * 100 + i) * 0.25;
            }
            port.end_step();
            core::record_step(ctx, t, 0.0, 0, len * sizeof(double));
        }
        port.close();
    }
};

void register_chaos_components() {
    core::register_component("chaos_source",
                             [] { return std::make_unique<ChaosSource>(); });
    core::register_component("chaos_view_source",
                             [] { return std::make_unique<ChaosViewSource>(); });
    core::register_component("chaos_double",
                             [] { return std::make_unique<ChaosDouble>(); });
    core::register_component("chaos_failer",
                             [] { return std::make_unique<Failer>(); });
}

}  // namespace

// ---- SB_FAULT grammar ------------------------------------------------------

TEST(FaultSpec, ParsesPlainThrow) {
    const ft::FaultSpec s = ft::parse_spec("flexpath.acquire=throw");
    EXPECT_EQ(s.point, "flexpath.acquire");
    EXPECT_EQ(s.action, ft::Action::Throw);
    EXPECT_EQ(s.at_hit, 0u);
    EXPECT_LT(s.probability, 0.0);
    EXPECT_EQ(s.max_fires, 1u);  // throws default to one fire
}

TEST(FaultSpec, ParsesScopeAndAtHit) {
    const ft::FaultSpec s = ft::parse_spec("flexpath.acquire:velos.fp=crash@5");
    EXPECT_EQ(s.point, "flexpath.acquire:velos.fp");
    EXPECT_EQ(s.action, ft::Action::Crash);
    EXPECT_EQ(s.at_hit, 5u);
}

TEST(FaultSpec, ParsesDelayWithProbabilityAndMaxFires) {
    const ft::FaultSpec s = ft::parse_spec(" ffs.decode = delay:12.5%0.25x3 ");
    EXPECT_EQ(s.point, "ffs.decode");
    EXPECT_EQ(s.action, ft::Action::Delay);
    EXPECT_DOUBLE_EQ(s.delay_ms, 12.5);
    EXPECT_DOUBLE_EQ(s.probability, 0.25);
    EXPECT_EQ(s.max_fires, 3u);
}

TEST(FaultSpec, DelayDefaultsToUnlimitedFires) {
    EXPECT_EQ(ft::parse_spec("p=delay:1").max_fires, 0u);
}

TEST(FaultSpec, AtHitWinsOverProbability) {
    const ft::FaultSpec s = ft::parse_spec("p=throw@3%0.5");
    EXPECT_EQ(s.at_hit, 3u);
    EXPECT_LT(s.probability, 0.0);
}

TEST(FaultSpec, MalformedEntriesThrow) {
    EXPECT_THROW((void)ft::parse_spec("no-equals"), std::invalid_argument);
    EXPECT_THROW((void)ft::parse_spec("=throw"), std::invalid_argument);
    EXPECT_THROW((void)ft::parse_spec("p=explode"), std::invalid_argument);
    EXPECT_THROW((void)ft::parse_spec("p=throw@"), std::invalid_argument);
    EXPECT_THROW((void)ft::parse_spec("p=throw%zz"), std::invalid_argument);
    EXPECT_THROW((void)ft::parse_spec("p=throwx"), std::invalid_argument);
}

// ---- registry behaviour ----------------------------------------------------

TEST_F(FaultTest, NothingArmedIsFree) {
    EXPECT_FALSE(ft::Registry::global().any_armed());
    ft::hit("some.point", "scope");  // must be a no-op, not a crash
}

TEST_F(FaultTest, AtHitFiresExactlyOnce) {
    auto& reg = ft::Registry::global();
    reg.arm_from_env("unit.p=throw@3");
    ft::hit("unit.p");
    ft::hit("unit.p");
    EXPECT_THROW(ft::hit("unit.p"), ft::InjectedFault);  // the 3rd hit
    for (int i = 0; i < 5; ++i) ft::hit("unit.p");       // spent: max_fires=1
    EXPECT_EQ(reg.hits("unit.p"), 8u);
    EXPECT_EQ(reg.fires("unit.p"), 1u);
}

TEST_F(FaultTest, CrashThrowsInjectedCrash) {
    ft::Registry::global().arm_from_env("unit.crash=crash@1");
    try {
        ft::hit("unit.crash");
        FAIL() << "expected InjectedCrash";
    } catch (const ft::InjectedCrash& e) {
        // The message names the point and the firing hit.
        EXPECT_NE(std::string(e.what()).find("unit.crash"), std::string::npos);
    }
}

TEST_F(FaultTest, MaxFiresBoundsRepeatedFiring) {
    auto& reg = ft::Registry::global();
    reg.arm_from_env("unit.x=throw@0x2");  // every hit eligible, two fires max
    int thrown = 0;
    for (int i = 0; i < 6; ++i) {
        try {
            ft::hit("unit.x");
        } catch (const ft::InjectedFault&) {
            ++thrown;
        }
    }
    EXPECT_EQ(thrown, 2);
    EXPECT_EQ(reg.fires("unit.x"), 2u);
}

TEST_F(FaultTest, ScopeNarrowsThePoint) {
    auto& reg = ft::Registry::global();
    reg.arm_from_env("unit.scoped:velos.fp=throw@0x0");
    ft::hit("unit.scoped", "other.fp");  // scope mismatch: no fire
    ft::hit("unit.scoped");              // no scope: no fire
    EXPECT_THROW(ft::hit("unit.scoped", "velos.fp"), ft::InjectedFault);
    EXPECT_EQ(reg.fires("unit.scoped:velos.fp"), 1u);
}

TEST_F(FaultTest, TrailingStarPrefixMatches) {
    ft::Registry::global().arm_from_env("flexpath.*=throw@0x0");
    ft::hit("component.step", "histogram");  // different prefix: no fire
    EXPECT_THROW(ft::hit("flexpath.publish", "any.fp"), ft::InjectedFault);
    EXPECT_THROW(ft::hit("flexpath.acquire"), ft::InjectedFault);
}

TEST_F(FaultTest, ProbabilityIsDeterministicUnderSeed) {
    auto& reg = ft::Registry::global();
    const auto pattern = [&](std::uint64_t seed) {
        reg.disarm_all();
        reg.set_seed(seed);
        reg.arm_from_env("unit.prob=throw%0.3x0");
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i) {
            try {
                ft::hit("unit.prob");
                fired.push_back(false);
            } catch (const ft::InjectedFault&) {
                fired.push_back(true);
            }
        }
        return fired;
    };
    const auto a = pattern(42), b = pattern(42), c = pattern(43);
    EXPECT_EQ(a, b);  // identical schedule: chaos tests replay exactly
    EXPECT_NE(a, c);  // a different seed fires a different schedule
    const auto fires = static_cast<std::size_t>(
        std::count(a.begin(), a.end(), true));
    EXPECT_GT(fires, 20u);  // ~60 expected at p=0.3
    EXPECT_LT(fires, 120u);
}

TEST_F(FaultTest, ArmFromEnvParsesMultipleEntriesAndSeed) {
    auto& reg = ft::Registry::global();
    EXPECT_EQ(reg.arm_from_env(nullptr), 0u);
    EXPECT_EQ(reg.arm_from_env(""), 0u);
    // A benign schedule (what the CI fault leg exports): seed only.
    EXPECT_EQ(reg.arm_from_env("seed=7"), 0u);
    EXPECT_FALSE(reg.any_armed());
    EXPECT_EQ(reg.arm_from_env("seed=9; unit.a=throw@1, unit.b=delay:1"), 2u);
    EXPECT_TRUE(reg.any_armed());
    EXPECT_THROW((void)reg.arm_from_env("unit.bad=?"), std::invalid_argument);
}

TEST_F(FaultTest, DisarmAllStopsFiringAndResetsCounts) {
    auto& reg = ft::Registry::global();
    reg.arm_from_env("unit.d=throw@1");
    EXPECT_THROW(ft::hit("unit.d"), ft::InjectedFault);
    reg.disarm_all();
    EXPECT_FALSE(reg.any_armed());
    ft::hit("unit.d");  // disarmed: no throw
    EXPECT_EQ(reg.hits("unit.d"), 0u);
    EXPECT_EQ(reg.fires("unit.d"), 0u);
}

// ---- chaos: supervised workflows -------------------------------------------

// Acceptance scenario 1: the sink component crashes mid-stream (its third
// acquire throws); the supervisor relaunches it, the input stream replays
// every un-acknowledged step, and the output file is bit-identical to a
// fault-free run.
TEST_F(FaultTest, ReaderCrashRestartProducesBitIdenticalOutput) {
    register_chaos_components();

    const std::string ref_file = tmp("chaos_ref_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_source", 1, {"chaos.ref.fp", "6"});
        wf.add("histogram", 1, {"chaos.ref.fp", "v", "8", ref_file});
        wf.run();
    }

    ft::Registry::global().arm_from_env(
        "seed=7; flexpath.acquire:chaos.data.fp=throw@3");
    const std::string out_file = tmp("chaos_restart_hist.txt");
    const double restarts0 = counter_total("workflow.component_restarts");
    const double replayed0 = counter_total("flexpath.steps_replayed");

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_source", 1, {"chaos.data.fp", "6"});
    wf.add("histogram", 1, {"chaos.data.fp", "v", "8", out_file});
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    wf.run();  // must complete despite the injected crash

    EXPECT_EQ(wf.restarts(0), 0);
    EXPECT_EQ(wf.restarts(1), 1);
    EXPECT_EQ(counter_total("workflow.component_restarts") - restarts0, 1.0);
    EXPECT_GT(counter_total("flexpath.steps_replayed") - replayed0, 0.0);
    EXPECT_EQ(slurp(out_file), slurp(ref_file));  // no loss, no duplication
}

// A restarted *source* regenerates its deterministic sequence from step 0;
// the stream suppresses the re-submissions of already-assembled steps, so
// the downstream output is still bit-identical.
TEST_F(FaultTest, SourceRestartReplayIsSuppressed) {
    register_chaos_components();

    const std::string ref_file = tmp("chaos_src_ref_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_source", 1, {"chaos.sref.fp", "5"});
        wf.add("histogram", 1, {"chaos.sref.fp", "v", "8", ref_file});
        wf.run();
    }

    // The source dies in its step-2 bookkeeping — after publishing steps 0
    // and 1.
    ft::Registry::global().arm_from_env(
        "seed=7; component.step:chaos_source=throw@2");
    const std::string out_file = tmp("chaos_src_hist.txt");
    const double suppressed0 = counter_total("flexpath.replay_suppressed");

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_source", 1, {"chaos.src.fp", "5"});
    wf.add("histogram", 1, {"chaos.src.fp", "v", "8", out_file});
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    wf.run();

    EXPECT_EQ(wf.restarts(0), 1);
    // Steps 0 and 1 were already assembled; their regeneration was dropped.
    EXPECT_EQ(counter_total("flexpath.replay_suppressed") - suppressed0, 2.0);
    EXPECT_EQ(slurp(out_file), slurp(ref_file));
}

// A restarted *middle* component must neither lose nor duplicate steps: its
// output stream rolls back to the last assembled step and the matching
// input steps are force-acknowledged (skip_reader_to), not replayed.
TEST_F(FaultTest, MiddleComponentRestartNeitherLosesNorDuplicates) {
    register_chaos_components();

    const std::string ref_file = tmp("chaos_mid_ref_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_source", 1, {"chaos.mref.fp", "6"});
        wf.add("chaos_double", 1, {"chaos.mref.fp", "chaos.mref2.fp"});
        wf.add("histogram", 1, {"chaos.mref2.fp", "v", "8", ref_file});
        wf.run();
    }

    // Crash between publishing output step 1 and acknowledging input step 1.
    ft::Registry::global().arm_from_env(
        "seed=7; component.step:chaos_double=throw@2");
    const std::string out_file = tmp("chaos_mid_hist.txt");

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_source", 1, {"chaos.mid.fp", "6"});
    wf.add("chaos_double", 1, {"chaos.mid.fp", "chaos.mid2.fp"});
    wf.add("histogram", 1, {"chaos.mid2.fp", "v", "8", out_file});
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    wf.run();

    EXPECT_EQ(wf.restarts(1), 1);
    EXPECT_EQ(slurp(out_file), slurp(ref_file));
}

// When restarts are exhausted the root cause propagates with its original
// type, and the restart count is visible.
TEST_F(FaultTest, RestartExhaustionPropagatesRootCause) {
    register_chaos_components();
    const double restarts0 = counter_total("workflow.component_restarts");

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_failer", 1, {"deterministic bug"});
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    try {
        wf.run();
        FAIL() << "expected the failure to propagate";
    } catch (const std::domain_error& e) {  // original type preserved
        EXPECT_NE(std::string(e.what()).find("deterministic bug"),
                  std::string::npos);
    }
    EXPECT_EQ(wf.restarts(0), 2);
    EXPECT_EQ(counter_total("workflow.component_restarts") - restarts0, 2.0);
}

// RestartPolicy::never (the default) keeps the seed's fail-fast behaviour.
TEST_F(FaultTest, NeverPolicyFailsFast) {
    register_chaos_components();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_failer", 1, {"fatal"});
    EXPECT_THROW(wf.run(), std::domain_error);
    EXPECT_EQ(wf.restarts(0), 0);
}

// Per-instance policies override the workflow-wide one.
TEST_F(FaultTest, PerInstancePolicyOverridesWorkflowPolicy) {
    register_chaos_components();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_failer", 1, {"always fails"});
    wf.set_restart_policy(core::RestartPolicy::on_failure(3));
    wf.set_restart_policy(0, core::RestartPolicy::never());
    EXPECT_THROW(wf.run(), std::domain_error);
    EXPECT_EQ(wf.restarts(0), 0);
}

// Two instances failing for distinct reasons: the first is the root cause,
// the second is collected — not silently dropped — in WorkflowError.
TEST_F(FaultTest, DistinctFailuresCollectSecondaryErrors) {
    register_chaos_components();
    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_failer", 1, {"first failure"});
    wf.add("chaos_failer", 1, {"second failure"});
    try {
        wf.run();
        FAIL() << "expected WorkflowError";
    } catch (const core::WorkflowError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("failure"), std::string::npos);
        EXPECT_NE(what.find("suppressed secondary"), std::string::npos);
        ASSERT_EQ(e.suppressed().size(), 1u);
        // One of the two messages is the root cause, the other suppressed.
        EXPECT_NE(e.suppressed()[0].find("failure"), std::string::npos);
        EXPECT_NE(e.suppressed()[0], what);
    }
}

// An injected decode fault surfaces as a component failure the supervisor
// can restart — exercising the ffs.decode point end to end.
TEST_F(FaultTest, DecodeFaultIsRecoverable) {
    register_chaos_components();

    const std::string ref_file = tmp("chaos_dec_ref_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_source", 1, {"chaos.dref.fp", "4"});
        wf.add("histogram", 1, {"chaos.dref.fp", "v", "8", ref_file});
        wf.run();
    }

    // ffs.decode runs once per step (shared metadata decode) in the reader.
    ft::Registry::global().arm_from_env("seed=7; ffs.decode=throw@2");
    const std::string out_file = tmp("chaos_dec_hist.txt");

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("chaos_source", 1, {"chaos.dec.fp", "4"});
    wf.add("histogram", 1, {"chaos.dec.fp", "v", "8", out_file});
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    wf.run();

    EXPECT_EQ(wf.restarts(1), 1);
    EXPECT_EQ(slurp(out_file), slurp(ref_file));
}

// Pool x chaos: the zero-copy source recycles its step buffers while the
// sink crashes mid-stream and the stream replays retained steps into the
// restarted incarnation.  If a retired buffer could alias a retained step,
// the replayed histogram would differ; it must be bit-identical to a
// fault-free run, and the SB_POOL=off leg must match both.
TEST_F(FaultTest, PooledWritePathCrashReplayBitIdentical) {
    register_chaos_components();
    const bool pool_was = u::pool_enabled();
    u::set_pool_enabled(true);
    u::BufferPool::global().bump_generation();

    const std::string ref_file = tmp("chaos_pool_ref_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_view_source", 1, {"chaos.pref.fp", "8"});
        wf.add("histogram", 1, {"chaos.pref.fp", "v", "8", ref_file});
        wf.run();
    }

    ft::Registry::global().arm_from_env(
        "seed=7; flexpath.acquire:chaos.pdata.fp=throw@3");
    const std::string out_file = tmp("chaos_pool_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_view_source", 1, {"chaos.pdata.fp", "8"});
        wf.add("histogram", 1, {"chaos.pdata.fp", "v", "8", out_file});
        wf.set_restart_policy(core::RestartPolicy::on_failure(2));
        wf.run();
        EXPECT_EQ(wf.restarts(1), 1);
    }
    EXPECT_EQ(slurp(out_file), slurp(ref_file));

    // SB_POOL=off leg: same workflow, plain allocations, same bytes.
    ft::Registry::global().disarm_all();
    u::set_pool_enabled(false);
    const std::string off_file = tmp("chaos_pool_off_hist.txt");
    {
        fp::Fabric fabric;
        core::Workflow wf(fabric);
        wf.add("chaos_view_source", 1, {"chaos.poff.fp", "8"});
        wf.add("histogram", 1, {"chaos.poff.fp", "v", "8", off_file});
        wf.run();
    }
    EXPECT_EQ(slurp(off_file), slurp(ref_file));

    u::BufferPool::global().bump_generation();
    u::set_pool_enabled(pool_was);
}
