// Tests for the FFS-like self-describing serialization: typed records,
// wire round-trips, and corrupt-input handling.
#include <gtest/gtest.h>

#include "ffs/encode.hpp"
#include "ffs/type.hpp"

namespace f = sb::ffs;

TEST(FfsKind, SizesAndNames) {
    EXPECT_EQ(f::kind_size(f::Kind::Byte), 1u);
    EXPECT_EQ(f::kind_size(f::Kind::Int32), 4u);
    EXPECT_EQ(f::kind_size(f::Kind::Int64), 8u);
    EXPECT_EQ(f::kind_size(f::Kind::UInt64), 8u);
    EXPECT_EQ(f::kind_size(f::Kind::Float32), 4u);
    EXPECT_EQ(f::kind_size(f::Kind::Float64), 8u);
    EXPECT_THROW((void)f::kind_size(f::Kind::String), std::invalid_argument);
    EXPECT_STREQ(f::kind_name(f::Kind::Float64), "float64");
}

TEST(FfsRecord, ScalarAndArrayAccess) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    rec.add_scalar<double>("x", 2.5);
    const std::vector<std::int32_t> v = {1, 2, 3, 4, 5, 6};
    rec.add_array<std::int32_t>("m", v, {2, 3});
    rec.add_strings("names", {"a", "b"});

    EXPECT_TRUE(rec.has("x"));
    EXPECT_FALSE(rec.has("y"));
    EXPECT_DOUBLE_EQ(rec.get_scalar<double>("x"), 2.5);
    EXPECT_EQ(rec.get_array<std::int32_t>("m"), v);
    EXPECT_EQ(rec.shape_of("m"), (std::vector<std::uint64_t>{2, 3}));
    EXPECT_EQ(rec.get_strings("names"), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(rec.raw_bytes("m").size(), 6 * sizeof(std::int32_t));
}

TEST(FfsRecord, TypeMismatchThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    rec.add_scalar<double>("x", 1.0);
    rec.add_strings("s", {"hi"});
    EXPECT_THROW((void)rec.get_scalar<std::int32_t>("x"), std::runtime_error);
    EXPECT_THROW((void)rec.get_strings("x"), std::runtime_error);
    EXPECT_THROW((void)rec.raw_bytes("s"), std::runtime_error);
    EXPECT_THROW((void)rec.get_scalar<double>("nope"), std::out_of_range);
}

TEST(FfsRecord, DuplicateFieldThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    rec.add_scalar<double>("x", 1.0);
    EXPECT_THROW(rec.add_scalar<double>("x", 2.0), std::invalid_argument);
}

TEST(FfsRecord, ShapeMismatchThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    const std::vector<double> v = {1, 2, 3};
    EXPECT_THROW(rec.add_array<double>("a", v, {2, 2}), std::invalid_argument);
    EXPECT_THROW(rec.add_raw("b", f::Kind::Float64, {4},
                             std::vector<std::byte>(3 * 8)),
                 std::invalid_argument);
}

TEST(FfsRecord, ScalarWithNonScalarShapeThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    const std::vector<double> v = {1, 2};
    rec.add_array<double>("a", v, {2});
    EXPECT_THROW((void)rec.get_scalar<double>("a"), std::runtime_error);
}

TEST(FfsDescriptor, Find) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    rec.add_scalar<std::uint64_t>("n", 7);
    const f::FieldDesc* fd = rec.descriptor().find("n");
    ASSERT_NE(fd, nullptr);
    EXPECT_EQ(fd->kind, f::Kind::UInt64);
    EXPECT_EQ(rec.descriptor().find("missing"), nullptr);
}

TEST(FfsWire, RoundTripAllKinds) {
    f::Record rec(f::TypeDescriptor{"everything", {}});
    rec.add_scalar<std::int32_t>("i32", -7);
    rec.add_scalar<std::int64_t>("i64", -1234567890123LL);
    rec.add_scalar<std::uint64_t>("u64", 0xFFFFFFFFFFFFFFFFull);
    rec.add_scalar<float>("f32", 1.5f);
    rec.add_scalar<double>("f64", -2.25);
    const std::vector<std::byte> bytes = {std::byte{0}, std::byte{255}, std::byte{1}};
    rec.add_array<std::byte>("raw", bytes, {3});
    rec.add_strings("strs", {"", "one", "two words", "ünïcode"});
    const std::vector<double> arr = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    rec.add_array<double>("arr", arr, {3, 2});

    const f::Bytes wire = f::encode(rec);
    const f::Record back = f::decode(wire);

    EXPECT_EQ(back.descriptor(), rec.descriptor());
    EXPECT_EQ(back.get_scalar<std::int32_t>("i32"), -7);
    EXPECT_EQ(back.get_scalar<std::int64_t>("i64"), -1234567890123LL);
    EXPECT_EQ(back.get_scalar<std::uint64_t>("u64"), 0xFFFFFFFFFFFFFFFFull);
    EXPECT_FLOAT_EQ(back.get_scalar<float>("f32"), 1.5f);
    EXPECT_DOUBLE_EQ(back.get_scalar<double>("f64"), -2.25);
    EXPECT_EQ(back.get_array<std::byte>("raw"), bytes);
    EXPECT_EQ(back.get_strings("strs"),
              (std::vector<std::string>{"", "one", "two words", "ünïcode"}));
    EXPECT_EQ(back.get_array<double>("arr"), arr);
    EXPECT_EQ(back.shape_of("arr"), (std::vector<std::uint64_t>{3, 2}));
}

TEST(FfsWire, EmptyRecordRoundTrip) {
    f::Record rec(f::TypeDescriptor{"empty", {}});
    const f::Record back = f::decode(f::encode(rec));
    EXPECT_EQ(back.descriptor().name, "empty");
    EXPECT_TRUE(back.descriptor().fields.empty());
}

TEST(FfsWire, EmptyArraysRoundTrip) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    rec.add_array<double>("a", {}, {0});
    rec.add_strings("s", {});
    const f::Record back = f::decode(f::encode(rec));
    EXPECT_TRUE(back.get_array<double>("a").empty());
    EXPECT_TRUE(back.get_strings("s").empty());
}

TEST(FfsWire, BadMagicThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    f::Bytes wire = f::encode(rec);
    wire[0] = std::byte{0x00};
    EXPECT_THROW((void)f::decode(wire), std::runtime_error);
}

TEST(FfsWire, TruncationAlwaysThrows) {
    f::Record rec(f::TypeDescriptor{"trunc", {}});
    rec.add_scalar<double>("x", 1.0);
    rec.add_strings("s", {"hello"});
    const f::Bytes wire = f::encode(rec);
    // Every proper prefix must fail cleanly, never crash or succeed.
    for (std::size_t len = 0; len < wire.size(); ++len) {
        EXPECT_THROW((void)f::decode(std::span(wire.data(), len)), std::runtime_error)
            << "prefix length " << len;
    }
}

TEST(FfsWire, TrailingGarbageThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    f::Bytes wire = f::encode(rec);
    wire.push_back(std::byte{1});
    EXPECT_THROW((void)f::decode(wire), std::runtime_error);
}

TEST(FfsWire, UnknownKindThrows) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    rec.add_scalar<std::int32_t>("x", 1);
    f::Bytes wire = f::encode(rec);
    // Field kind byte: magic(4) + name(4+1) + nfields(4) + fieldname(4+1) = 18.
    wire[18] = std::byte{99};
    EXPECT_THROW((void)f::decode(wire), std::runtime_error);
}

// Property sweep: numeric arrays of many shapes round-trip exactly.
class FfsShapes
    : public ::testing::TestWithParam<std::vector<std::uint64_t>> {};

TEST_P(FfsShapes, Float64ArrayRoundTrip) {
    const auto shape = GetParam();
    std::uint64_t n = 1;
    for (auto d : shape) n *= d;
    std::vector<double> data(n);
    for (std::uint64_t i = 0; i < n; ++i) data[i] = static_cast<double>(i) * 0.5 - 3.0;

    f::Record rec(f::TypeDescriptor{"sweep", {}});
    rec.add_array<double>("a", data, shape);
    const f::Record back = f::decode(f::encode(rec));
    EXPECT_EQ(back.get_array<double>("a"), data);
    EXPECT_EQ(back.shape_of("a"), shape);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FfsShapes,
    ::testing::Values(std::vector<std::uint64_t>{}, std::vector<std::uint64_t>{1},
                      std::vector<std::uint64_t>{17}, std::vector<std::uint64_t>{4, 5},
                      std::vector<std::uint64_t>{2, 3, 4},
                      std::vector<std::uint64_t>{1, 1, 1, 1},
                      std::vector<std::uint64_t>{3, 0, 2}));

TEST(FfsByteStream, PrimitiveRoundTrip) {
    f::ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFull);
    w.str("hello");
    const f::Bytes b = w.take();

    f::ByteReader r(b);
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.done());
}

TEST(FfsByteStream, LittleEndianOnWire) {
    f::ByteWriter w;
    w.u32(0x01020304);
    const f::Bytes b = w.take();
    EXPECT_EQ(b[0], std::byte{0x04});
    EXPECT_EQ(b[3], std::byte{0x01});
}

TEST(FfsByteStream, ReadPastEndThrows) {
    f::ByteReader r({});
    EXPECT_THROW((void)r.u8(), std::runtime_error);
}

TEST(FfsByteStream, ViewAliasesWireWithoutCopy) {
    f::ByteWriter w;
    w.u32(7);
    const std::vector<std::byte> payload(16, std::byte{0xAB});
    w.bytes(payload);
    const f::Bytes wire = w.take();

    f::ByteReader r(wire);
    EXPECT_EQ(r.u32(), 7u);
    const std::span<const std::byte> v = r.view(16);
    ASSERT_EQ(v.size(), 16u);
    // The span points into the wire buffer itself.
    EXPECT_EQ(v.data(), wire.data() + 4);
    EXPECT_EQ(v[0], std::byte{0xAB});
    EXPECT_TRUE(r.done());
    // Past-the-end views throw like every other read.
    f::ByteReader r2(wire);
    EXPECT_THROW((void)r2.view(wire.size() + 1), std::runtime_error);
}

TEST(FfsByteStream, ReserveKeepsContentAndAvoidsRegrowth) {
    f::ByteWriter w;
    w.reserve(64);
    w.u64(1);
    w.str("hello");
    const f::Bytes b = w.take();
    ASSERT_EQ(b.size(), 8u + 4u + 5u);
    f::ByteReader r(b);
    EXPECT_EQ(r.u64(), 1u);
    EXPECT_EQ(r.str(), "hello");
}

TEST(FfsRecord, TakeBytesMovesPayloadOut) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    const std::vector<double> v = {1.0, 2.0, 3.0};
    rec.add_array<double>("x", v, {3});
    rec.add_strings("s", {"a"});

    const std::vector<std::byte> taken = rec.take_bytes("x");
    ASSERT_EQ(taken.size(), 3 * sizeof(double));
    double back[3];
    std::memcpy(back, taken.data(), sizeof(back));
    EXPECT_EQ(back[1], 2.0);
    // The field stays declared; its payload is now empty.
    EXPECT_TRUE(rec.has("x"));
    EXPECT_EQ(rec.raw_bytes("x").size(), 0u);
    // String fields have no raw payload to take.
    EXPECT_THROW((void)rec.take_bytes("s"), std::runtime_error);
    EXPECT_THROW((void)rec.take_bytes("absent"), std::out_of_range);
}

// encode reserves the exact packet size up front: the round-trip stays
// byte-identical and the buffer never over-allocates past one reservation.
TEST(FfsWire, EncodeReservesExactSize) {
    f::Record rec(f::TypeDescriptor{"sized", {}});
    const std::vector<double> xs(37, 1.5);
    rec.add_array<double>("xs", xs, {37});
    rec.add_strings("names", {"alpha", "beta"});
    rec.add_scalar<std::int32_t>("n", 42);
    const f::Bytes wire = f::encode(rec);
    const f::Record back = f::decode(wire);
    EXPECT_EQ(back.get_array<double>("xs"), xs);
    EXPECT_EQ(back.get_scalar<std::int32_t>("n"), 42);
    EXPECT_EQ(f::encode(back), wire);
}

// ---- scatter-gather encoding and borrowed payloads ------------------------

namespace {

f::Bytes concat_segments(const f::EncodedSegments& segs) {
    f::Bytes out;
    for (const auto& s : segs.segments) out.insert(out.end(), s.begin(), s.end());
    return out;
}

}  // namespace

// Concatenating the segment list reproduces encode() byte for byte: the
// wire format is unchanged, only the memcpy of bulk payloads is elided.
TEST(FfsSegments, ConcatenationEqualsEncode) {
    f::Record rec(f::TypeDescriptor{"seg", {}});
    const std::vector<double> big(96, 3.25);  // 768 B: spliced out
    rec.add_array<double>("big", big, {96});
    rec.add_scalar<std::int32_t>("n", 9);  // 4 B: inlined into the header
    rec.add_strings("names", {"alpha", "beta"});
    const std::vector<float> mid(64, 1.0f);  // 256 B: spliced out
    rec.add_array<float>("mid", mid, {64});

    const f::Bytes wire = f::encode(rec);
    const f::EncodedSegments segs = f::encode_segments(rec);
    EXPECT_EQ(segs.total, wire.size());
    EXPECT_EQ(concat_segments(segs), wire);
    // The bulk payloads alias the record's storage, not the header buffer.
    ASSERT_GE(segs.segments.size(), 3u);
    bool found_alias = false;
    for (const auto& s : segs.segments) {
        if (s.data() == rec.raw_bytes("big").data()) found_alias = true;
    }
    EXPECT_TRUE(found_alias);
    // And the reassembled wire still decodes.
    const f::Record back = f::decode(wire);
    EXPECT_EQ(back.get_array<double>("big"), big);
}

// Records with only small payloads degenerate to one header segment whose
// bytes are exactly encode()'s output.
TEST(FfsSegments, SmallPayloadsInlineIntoHeader) {
    f::Record rec(f::TypeDescriptor{"small", {}});
    rec.add_scalar<double>("x", 1.0);
    const std::vector<std::int32_t> v = {1, 2, 3};  // 12 B < splice threshold
    rec.add_array<std::int32_t>("v", v, {3});
    const f::EncodedSegments segs = f::encode_segments(rec);
    ASSERT_EQ(segs.segments.size(), 1u);
    EXPECT_EQ(segs.segments[0].data(), segs.header.data());
    EXPECT_EQ(concat_segments(segs), f::encode(rec));
}

// A field added as a borrowed span encodes identically to an owned copy and
// reads back through the same accessors.
TEST(FfsBorrowed, BorrowedFieldMatchesOwned) {
    const std::vector<double> payload = {1.5, -2.5, 3.5, 4.5};
    const std::span<const std::byte> raw = std::as_bytes(std::span(payload));

    f::Record owned(f::TypeDescriptor{"t", {}});
    owned.add_array<double>("xs", payload, {4});
    f::Record borrowed(f::TypeDescriptor{"t", {}});
    borrowed.add_borrowed("xs", f::Kind::Float64, {4}, raw);

    // The borrowed record holds a view, not a copy.
    EXPECT_EQ(borrowed.raw_bytes("xs").data(), raw.data());
    EXPECT_EQ(f::encode(borrowed), f::encode(owned));
    // take_bytes materializes an owned copy of the view.
    f::Record borrowed2(f::TypeDescriptor{"t", {}});
    borrowed2.add_borrowed("xs", f::Kind::Float64, {4}, raw);
    const std::vector<std::byte> taken = borrowed2.take_bytes("xs");
    EXPECT_EQ(taken.size(), raw.size());
    EXPECT_NE(taken.data(), raw.data());
}

TEST(FfsBorrowed, SizeMismatchThrows) {
    const std::vector<double> payload = {1.0, 2.0};
    f::Record rec(f::TypeDescriptor{"t", {}});
    EXPECT_THROW(rec.add_borrowed("xs", f::Kind::Float64, {3},
                                  std::as_bytes(std::span(payload))),
                 std::invalid_argument);
}

// encode_into reuses the supplied buffer's capacity: same bytes as encode,
// and a steady-state re-encode does not grow the buffer again.
TEST(FfsWire, EncodeIntoReusesStorage) {
    f::Record rec(f::TypeDescriptor{"t", {}});
    const std::vector<double> xs(50, 2.0);
    rec.add_array<double>("xs", xs, {50});

    const f::Bytes wire = f::encode(rec);
    f::Bytes out;
    f::encode_into(rec, out);
    EXPECT_EQ(out, wire);
    const std::size_t cap = out.capacity();
    f::encode_into(rec, out);
    EXPECT_EQ(out, wire);
    EXPECT_EQ(out.capacity(), cap);
}

// ByteWriter::str accepts any string-ish argument without constructing a
// temporary std::string.
TEST(FfsByteStream, StrTakesStringView) {
    const std::string_view sv = "view";
    f::ByteWriter w;
    w.str(sv);
    w.str(std::string("owned"));
    w.str("literal");
    const f::Bytes b = w.take();
    f::ByteReader r(b);
    EXPECT_EQ(r.str(), "view");
    EXPECT_EQ(r.str(), "owned");
    EXPECT_EQ(r.str(), "literal");
    EXPECT_TRUE(r.done());
}

// A ByteWriter constructed from recycled storage starts empty but keeps the
// old capacity.
TEST(FfsByteStream, AdoptedStorageIsClearedAndReused) {
    f::Bytes storage(128, std::byte{0x77});
    const std::byte* base = storage.data();
    f::ByteWriter w(std::move(storage));
    EXPECT_EQ(w.size(), 0u);
    w.u64(42);
    const f::Bytes b = w.take();
    ASSERT_EQ(b.size(), 8u);
    EXPECT_EQ(b.data(), base);  // same allocation, no regrowth
    f::ByteReader r(b);
    EXPECT_EQ(r.u64(), 42u);
}
